"""Unit tests for the cost-based adaptive planner (:mod:`repro.plan`).

Covers the satellite guarantees around the differential suite:

* **Statistics correctness** — the planner's keyword document
  frequencies and spatial density histogram exactly match ground-truth
  recounts over the live corpus, both right after build and after
  seeded insert/delete streams.
* **Determinism** — identical seed + corpus produce identical plan
  choices, and the recorded plan round-trips through
  ``QueryExecution.to_dict()`` / JSON.
* **Surfacing** — the chosen strategy appears in the slow-query log,
  the rendered ``repro trace`` report, and the metrics counters.
* **Plan cache** — hits are marked, mutation invalidates, forcing works.
* **Persistence** — adaptive engines save and reload, statistics
  rebuilt, for single and sharded layouts.
* **CLI** — ``repro plan explain`` works on adaptive engines and fails
  politely elsewhere.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.bench.workloads import ConcurrentLoadGenerator
from repro.cli import main
from repro.core.engine import SpatialKeywordEngine
from repro.core.query import SpatialKeywordQuery
from repro.datasets import save_tsv
from repro.errors import QueryError
from repro.model import SpatialObject
from repro.persist import load_engine, save_engine, verify_engine
from repro.plan import DensityGrid
from repro.shard import ShardedEngine

from tests.test_differential import corpus_objects


def build_auto(objects, candidates=None, signature_bytes=8):
    engine = SpatialKeywordEngine(
        index="auto", signature_bytes=signature_bytes, auto_kinds=candidates
    )
    engine.add_all(objects)
    engine.build()
    return engine


def recount(engine):
    """Ground-truth df map and point list over the engine's live objects."""
    analyzer = engine.corpus.analyzer
    df: dict[str, int] = {}
    points = []
    for obj in engine.objects():
        for term in analyzer.terms(obj.text):
            df[term] = df.get(term, 0) + 1
        points.append(obj.point)
    return df, points


def assert_stats_match_recount(engine):
    stats = engine.index.stats
    df, points = recount(engine)
    assert stats.document_count == len(points)
    for term, count in df.items():
        assert stats.document_frequency(term) == count, term
    assert stats.document_frequency("zzznope") == 0
    grid = stats.grid
    expected = [0] * len(grid.counts)
    for point in points:
        expected[grid.cell_of(point)] += 1
    assert grid.counts == expected
    assert grid.total == len(points)


class TestStatisticsCorrectness:
    def test_exact_after_build(self):
        engine = build_auto(corpus_objects(200, seed=23))
        assert_stats_match_recount(engine)

    def test_exact_after_insert_delete_stream(self):
        objects = corpus_objects(150, seed=23)
        engine = build_auto(objects)
        rng = random.Random(7)
        version_before = engine.index.stats.version
        # Inserts include points outside the original extent (clamped
        # into boundary cells) and brand-new vocabulary.
        for i in range(30):
            point = (rng.uniform(-50.0, 150.0), rng.uniform(-50.0, 150.0))
            engine.add_object(10_000 + i, point, f"newword{i % 5} cafe")
        for oid in rng.sample([obj.oid for obj in objects], 20):
            assert engine.delete(oid)
        assert engine.index.stats.version > version_before
        assert_stats_match_recount(engine)

    def test_stream_interleaved_with_queries(self):
        engine = build_auto(corpus_objects(120, seed=5))
        rng = random.Random(13)
        workload = ConcurrentLoadGenerator(
            list(engine.objects()), engine.analyzer, seed=2
        )
        for i in range(10):
            engine.add_object(
                20_000 + i, (rng.uniform(0, 100), rng.uniform(0, 100)),
                "pop stream cafe",
            )
            engine.delete(i)
            query = workload.query(2, 5)
            engine.query(query.point, query.keywords, k=query.k)
            assert_stats_match_recount(engine)


class TestDensityGrid:
    def test_fractional_area_counts(self):
        grid = DensityGrid((0.0, 0.0), (10.0, 10.0), cells_per_dim=10)
        for x in range(10):
            for y in range(10):
                grid.add((x + 0.5, y + 0.5))
        from repro.spatial.geometry import Rect

        # A rect covering exactly 4 whole cells.
        assert grid.count_in(Rect((0.0, 0.0), (2.0, 2.0))) == pytest.approx(4.0)
        # Half-cells count fractionally.
        assert grid.count_in(Rect((0.0, 0.0), (1.0, 0.5))) == pytest.approx(0.5)
        # The whole extent counts everything.
        assert grid.count_in(Rect((0.0, 0.0), (10.0, 10.0))) == pytest.approx(100.0)

    def test_out_of_bounds_points_clamp(self):
        grid = DensityGrid((0.0, 0.0), (10.0, 10.0), cells_per_dim=4)
        grid.add((-5.0, -5.0))
        grid.add((15.0, 15.0))
        assert grid.total == 2
        assert grid.counts[grid.cell_of((-5.0, -5.0))] >= 1


class TestDeterminism:
    @pytest.fixture(scope="class")
    def world(self):
        objects = corpus_objects(160, seed=41)
        workload = ConcurrentLoadGenerator(
            objects, build_auto(objects).analyzer, seed=9
        )
        queries = [workload.query(n, k) for n, k in
                   [(1, 5), (2, 3), (2, 10), (3, 1), (1, 50)]]
        return objects, queries

    def test_identical_corpora_make_identical_plans(self, world):
        objects, queries = world
        engine_a = build_auto(objects)
        engine_b = build_auto(objects)
        for query in queries:
            plan_a = engine_a.search(query).plan
            plan_b = engine_b.search(query).plan
            assert plan_a == plan_b

    def test_replay_after_cache_clear_is_identical(self, world):
        objects, queries = world
        engine = build_auto(objects)
        first = [engine.search(query).plan for query in queries]
        engine.index.planner.clear_cache()
        second = [engine.search(query).plan for query in queries]
        assert first == second

    def test_plan_round_trips_through_to_dict_json(self, world):
        objects, queries = world
        engine = build_auto(objects)
        for query in queries:
            execution = engine.search(query)
            payload = json.loads(json.dumps(execution.to_dict()))
            assert payload["plan"] == execution.plan
            assert payload["plan"]["strategy"] in engine.index.candidates
            assert payload["algorithm"].startswith("AUTO:")


class TestPlanCacheAndForce:
    @pytest.fixture()
    def engine(self):
        return build_auto(corpus_objects(100, seed=3))

    def test_repeat_shape_hits_cache(self, engine):
        query = SpatialKeywordQuery.of((10.0, 10.0), ["cafe"], 5)
        planner = engine.index.planner
        first = planner.decide(query)
        assert not first.cached
        # A different point, same shape: still a cache hit.
        second = planner.decide(
            SpatialKeywordQuery.of((90.0, 90.0), ["cafe"], 5)
        )
        assert second.cached
        assert second.strategy == first.strategy

    def test_mutation_invalidates_cache(self, engine):
        query = SpatialKeywordQuery.of((10.0, 10.0), ["cafe"], 5)
        planner = engine.index.planner
        first = planner.decide(query)
        engine.add_object(9_999, (1.0, 1.0), "cafe mutation")
        again = planner.decide(query)
        assert not again.cached
        assert again.stats_version > first.stats_version

    def test_force_overrides_cost_order(self, engine):
        planner = engine.index.planner
        query = SpatialKeywordQuery.of((10.0, 10.0), ["cafe"], 5)
        for kind in engine.index.candidates:
            planner.force = kind
            decision = planner.decide(query)
            assert decision.strategy == kind
            assert decision.forced
        planner.force = None
        assert not planner.decide(query).forced

    def test_forced_execution_still_correct(self, engine):
        query = SpatialKeywordQuery.of((10.0, 10.0), ["cafe"], 5)
        baseline = [
            (r.distance, r.obj.oid) for r in engine.search(query).results
        ]
        for kind in engine.index.candidates:
            engine.index.planner.force = kind
            execution = engine.search(query)
            got = [(r.distance, r.obj.oid) for r in execution.results]
            assert got == baseline, kind
            assert execution.plan["strategy"] == kind
            assert execution.plan["forced"]


class TestStrategySurfacing:
    @pytest.fixture(scope="class")
    def served(self):
        from repro.obs.trace import QueryTracer
        from repro.serve import QueryService

        objects = corpus_objects(120, seed=19)
        engine = build_auto(objects)
        workload = ConcurrentLoadGenerator(objects, engine.analyzer, seed=4)
        tracer = QueryTracer(sample_every=1)
        with QueryService(
            engine, workers=2, slow_query_ms=0.0, tracer=tracer
        ) as service:
            executions = service.run_batch(workload.queries(8, 2, 5))
            stats = service.stats()
            slow_rows = service.slow_log.as_dicts()
        return engine, executions, stats, slow_rows, tracer

    def test_slow_query_log_carries_strategy(self, served):
        engine, executions, _, slow_rows, _ = served
        assert slow_rows
        for row in slow_rows:
            if row["cache"] == "hit":
                continue
            assert row["strategy"] in engine.index.candidates

    def test_trace_report_carries_strategy(self, served):
        from repro.obs.tracereport import render_trace

        engine, _, _, _, tracer = served
        reports = [render_trace(trace) for trace in tracer.traces()]
        assert any("strategy=" in report for report in reports)

    def test_metrics_count_chosen_strategies(self, served):
        _, executions, stats, _, _ = served
        counters = stats.metrics["counters"]
        routed = [e for e in executions if e.plan is not None]
        assert counters["planner.queries"] >= 1
        chosen = {
            name: value for name, value in counters.items()
            if name.startswith("planner.chosen.")
        }
        assert sum(chosen.values()) == counters["planner.queries"]
        won = sum(v for n, v in counters.items()
                  if n.startswith("planner.won."))
        lost = sum(v for n, v in counters.items()
                   if n.startswith("planner.lost."))
        assert won + lost == counters["planner.queries"]
        assert routed

    def test_plan_phase_span_in_trace(self, served):
        _, _, _, _, tracer = served
        names = {
            span.name for trace in tracer.traces() for span in trace.spans
        }
        assert "plan" in names


class TestPersistence:
    def test_single_auto_round_trip(self, tmp_path):
        objects = corpus_objects(120, seed=37)
        engine = build_auto(objects, candidates=("ir2", "iio", "sig"))
        query = SpatialKeywordQuery.of((50.0, 50.0), ["cafe"], 5)
        before = [(r.distance, r.obj.oid) for r in engine.search(query).results]
        target = str(tmp_path / "auto-engine")
        save_engine(engine, target)
        report = verify_engine(target)
        assert report["ok"], report
        reloaded = load_engine(target)
        assert reloaded.index_kind == "auto"
        assert reloaded.index.candidates == ("ir2", "iio", "sig")
        execution = reloaded.search(query)
        after = [(r.distance, r.obj.oid) for r in execution.results]
        assert after == before
        assert execution.plan["strategy"] in reloaded.index.candidates
        assert_stats_match_recount(reloaded)
        # Mutations keep working after a reload.
        reloaded.add_object(50_000, (50.0, 50.0), "cafe reload")
        assert reloaded.search(query).results[0].obj.oid == 50_000
        assert reloaded.delete(50_000)
        assert [
            (r.distance, r.obj.oid) for r in reloaded.search(query).results
        ] == before

    def test_sharded_auto_round_trip(self, tmp_path):
        objects = corpus_objects(150, seed=43)
        engine = ShardedEngine(n_shards=3, index="auto", signature_bytes=8)
        engine.add_all(objects)
        engine.build()
        # A term that actually occurs: a zero-match keyword would now be
        # pruned by the routing summaries before any shard plans at all.
        term = sorted(engine._global_vocabulary().terms())[0]
        query = SpatialKeywordQuery.of((50.0, 50.0), [term], 8)
        before = [(r.distance, r.obj.oid) for r in engine.search(query).results]
        target = str(tmp_path / "auto-sharded")
        save_engine(engine, target)
        engine.close()
        reloaded = load_engine(target)
        try:
            execution = reloaded.search(query)
            got = [(r.distance, r.obj.oid) for r in execution.results]
            assert got == before
            assert execution.plan is not None
            for shard in reloaded.shards:
                assert_stats_match_recount(shard)
        finally:
            reloaded.close()


class TestAutoConstruction:
    def test_auto_cannot_nest_itself(self):
        with pytest.raises(QueryError):
            SpatialKeywordEngine(index="auto", auto_kinds=("auto", "ir2"))

    def test_unknown_candidate_fails(self):
        with pytest.raises(QueryError):
            SpatialKeywordEngine(index="auto", auto_kinds=("btree",))

    def test_duplicate_candidates_deduplicate(self):
        engine = SpatialKeywordEngine(
            index="auto", auto_kinds=("ir2", "IR2", "iio")
        )
        assert engine.index.candidates == ("ir2", "iio")


class TestPlanExplainCLI:
    @pytest.fixture()
    def auto_dir(self, tmp_path):
        data = str(tmp_path / "data.tsv")
        save_tsv(data, corpus_objects(60, seed=51))
        target = str(tmp_path / "auto-engine")
        assert main(
            ["build", "--data", data, "--out", target, "--index", "auto",
             "--signature-bytes", "8"]
        ) == 0
        return target

    def test_explain_prints_decision(self, auto_dir, capsys):
        code = main(
            ["plan", "explain", "--engine", auto_dir, "--point", "50", "50",
             "--keywords", "cafe", "-k", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen" in out
        assert "statistics:" in out

    def test_explain_json_is_parseable(self, auto_dir, capsys):
        code = main(
            ["plan", "explain", "--engine", auto_dir, "--point", "50", "50",
             "--keywords", "cafe", "-k", "5", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        report = payload["reports"][0]
        assert report["decision"]["strategy"] in report["decision"]["estimates"]
        assert "selectivity" in report["statistics"]

    def test_explain_needs_auto_engine(self, tmp_path, capsys):
        data = str(tmp_path / "data.tsv")
        save_tsv(data, corpus_objects(40, seed=51))
        target = str(tmp_path / "ir2-engine")
        assert main(["build", "--data", data, "--out", target]) == 0
        code = main(
            ["plan", "explain", "--engine", target, "--point", "0", "0",
             "--keywords", "cafe"]
        )
        assert code == 1
        assert "auto" in capsys.readouterr().err
