"""Tests for signature-saturation diagnostics (Section IV's motivation)."""

from __future__ import annotations

import random

import pytest

from repro.core import BulkItem, Corpus, IR2Tree, MIR2Tree, bulk_load
from repro.core.diagnostics import (
    estimated_false_positive_rates,
    signature_saturation,
)
from repro.model import SpatialObject
from repro.spatial import Rect, RTree
from repro.storage import InMemoryBlockDevice, PageStore
from repro.text import HashSignatureFactory


def make_corpus(n=300, vocab=600, words=20, seed=1):
    rng = random.Random(seed)
    corpus = Corpus()
    for i in range(n):
        text = " ".join(f"w{rng.randrange(vocab)}" for _ in range(words))
        corpus.add(SpatialObject(i, (rng.uniform(0, 90), rng.uniform(0, 90)), text))
    return corpus


def items_of(corpus):
    return [
        BulkItem(ptr, Rect.from_point(obj.point), corpus.analyzer.terms(obj.text))
        for ptr, obj in corpus.iter_items()
    ]


@pytest.fixture(scope="module")
def corpus():
    return make_corpus()


@pytest.fixture(scope="module")
def ir2(corpus):
    tree = IR2Tree(PageStore(InMemoryBlockDevice()), HashSignatureFactory(8), capacity=8)
    bulk_load(tree, items_of(corpus))
    return tree


@pytest.fixture(scope="module")
def mir2(corpus):
    tree = MIR2Tree(
        PageStore(InMemoryBlockDevice()),
        (8, 64, 512),
        corpus.term_resolver,
        capacity=8,
    )
    bulk_load(tree, items_of(corpus))
    return tree


class TestSaturation:
    def test_levels_reported_leaves_first(self, ir2):
        report = signature_saturation(ir2)
        assert [row.level for row in report] == list(range(ir2.height))

    def test_entry_counts_consistent(self, ir2):
        report = signature_saturation(ir2)
        assert report[0].entries == ir2.size  # leaf entries = objects
        for lower, upper in zip(report[:-1], report[1:]):
            assert upper.entries == lower.nodes  # one entry per child

    def test_fill_fractions_in_unit_interval(self, ir2, mir2):
        for tree in (ir2, mir2):
            for row in signature_saturation(tree):
                assert 0.0 <= row.mean_fill <= row.max_fill <= 1.0

    def test_ir2_saturates_toward_root(self, ir2):
        """The paper's Section IV claim: fixed-length signatures have
        'more 1's' at higher levels."""
        report = signature_saturation(ir2)
        assert report[-1].mean_fill > report[0].mean_fill
        assert report[-1].mean_fill > 0.9  # essentially saturated

    def test_mir2_stays_near_design_point(self, corpus, ir2, mir2):
        """Per-level optimal lengths keep upper levels far below the
        IR2-Tree's saturation."""
        ir2_top = signature_saturation(ir2)[-1].mean_fill
        mir2_top = signature_saturation(mir2)[-1].mean_fill
        assert mir2_top < ir2_top
        assert mir2_top < 0.8

    def test_mir2_widths_grow_with_level(self, mir2):
        report = signature_saturation(mir2)
        widths = [row.signature_bits for row in report]
        assert widths == sorted(widths)
        assert widths[-1] > widths[0]

    def test_plain_rtree_reports_zero_fill(self):
        tree = RTree(PageStore(InMemoryBlockDevice()), capacity=4)
        for i in range(10):
            tree.insert(i, Rect.from_point((float(i), 0.0)))
        report = signature_saturation(tree)
        assert all(row.mean_fill == 0.0 for row in report)
        assert all(row.signature_bits == 0 for row in report)


class TestFalsePositiveEstimates:
    def test_rates_follow_fill(self, ir2):
        rates = estimated_false_positive_rates(ir2, bits_per_word=3)
        report = {row.level: row for row in map(lambda r: r, signature_saturation(ir2))}
        for level, rate in rates.items():
            assert rate == pytest.approx(report[level].mean_fill**3)

    def test_ir2_root_rate_near_one(self, ir2):
        rates = estimated_false_positive_rates(ir2, bits_per_word=3)
        assert rates[max(rates)] > 0.7

    def test_mir2_root_rate_lower(self, ir2, mir2):
        ir2_rates = estimated_false_positive_rates(ir2, bits_per_word=3)
        mir2_rates = estimated_false_positive_rates(mir2, bits_per_word=3)
        assert mir2_rates[max(mir2_rates)] < ir2_rates[max(ir2_rates)]
