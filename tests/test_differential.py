"""Cross-index differential harness: the five index kinds are answer-equivalent.

The paper's central claim (§V-VI) is that the IR2-Tree returns *exactly*
the same answers as the R-Tree baseline while doing fewer I/Os — answer
equivalence across index kinds is therefore a perfect test oracle.  This
harness builds every index kind ("ir2", "mir2", "rtree", "iio", "sig")
over the same randomized corpora and checks each one's top-k list against
an index-free brute-force oracle and against the others.

Ties at the k-th distance need care: the tree algorithms break ties by
heap insertion order while the scan baselines sort by (distance, oid), so
two correct indexes may legitimately return *different* members of the
tie group at rank k.  Equivalence is therefore asserted as:

* identical result length and identical distance multiset (so the
  distances agree everywhere, including inside the tie group);
* every returned (oid, distance) pair is a true match at its true
  distance;
* the strict prefix — results closer than the k-th distance — is the
  *identical set* across every index (it is uniquely determined);
* no duplicate oids.

For queries without ties at rank k this collapses to byte-identical
(oid, distance) lists across all five kinds.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import WorkloadGenerator
from repro.core.engine import SpatialKeywordEngine
from repro.core.query import SpatialKeywordQuery
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.spatial.geometry import target_point_distance

KINDS = ("ir2", "mir2", "rtree", "iio", "sig")

#: Distances across algorithms come from the same float math; the oracle
#: comparison still uses a tolerance to stay robust to summation order.
EPS = 1e-9


def build_engines(objects, signature_bytes=8):
    """One engine per index kind, all over the same object list."""
    engines = {}
    for kind in KINDS:
        engine = SpatialKeywordEngine(index=kind, signature_bytes=signature_bytes)
        engine.add_all(objects)
        engine.build()
        engines[kind] = engine
    return engines


def oracle_matches(objects, analyzer, query):
    """Every true match as (distance, oid), sorted — the full ground truth."""
    terms = analyzer.query_terms(query.keywords)
    return sorted(
        (target_point_distance(obj.point, query.target), obj.oid)
        for obj in objects
        if analyzer.contains_all(obj.text, terms)
    )


def assert_equivalent(engines, objects, query):
    """All index kinds answer ``query`` equivalently (tie-aware, see module)."""
    analyzer = next(iter(engines.values())).corpus.analyzer
    matches = oracle_matches(objects, analyzer, query)
    expected_n = min(query.k, len(matches))
    expected_dists = [d for d, _ in matches[:expected_n]]
    true_distance = dict((oid, d) for d, oid in matches)
    kth = expected_dists[-1] if expected_n else 0.0
    expected_prefix = {
        oid for d, oid in matches[:expected_n] if d < kth - EPS
    }
    for kind, engine in engines.items():
        execution = engine.query(query.point, query.keywords, k=query.k)
        got = [(r.distance, r.obj.oid) for r in execution.results]
        label = f"{kind} on {query.keywords} k={query.k}"
        assert len(got) == expected_n, label
        oids = [oid for _, oid in got]
        assert len(set(oids)) == len(oids), f"duplicate results: {label}"
        for (distance, oid), expected in zip(got, expected_dists):
            assert distance == pytest.approx(expected, abs=EPS), label
            assert oid in true_distance, f"non-match returned: {label}"
            assert distance == pytest.approx(true_distance[oid], abs=EPS), label
        prefix = {oid for d, oid in got if d < kth - EPS}
        assert prefix == expected_prefix, f"pre-tie prefix differs: {label}"


def corpus_objects(n_objects, seed, vocabulary=300, avg_words=8, clusters=5):
    config = DatasetConfig(
        name=f"diff-{n_objects}-{seed}",
        n_objects=n_objects,
        vocabulary_size=vocabulary,
        avg_unique_words=avg_words,
        clusters=clusters,
        seed=seed,
    )
    return SpatialTextDatasetGenerator(config).generate()


class TestDifferentialFast:
    """A small always-on slice of the sweep (the full sweep is @slow)."""

    @pytest.fixture(scope="class")
    def setup(self):
        objects = corpus_objects(150, seed=11)
        # 4-byte signatures: a deliberately high false-positive rate so
        # the verification step, not signature luck, carries correctness.
        engines = build_engines(objects, signature_bytes=4)
        workload = WorkloadGenerator(
            objects, engines["ir2"].corpus.analyzer, seed=5
        )
        return objects, engines, workload

    @pytest.mark.parametrize("num_keywords,k", [(1, 5), (2, 3), (3, 10)])
    def test_sampled_queries_agree(self, setup, num_keywords, k):
        objects, engines, workload = setup
        for query in workload.queries(4, num_keywords, k):
            assert_equivalent(engines, objects, query)

    def test_zero_match_keywords(self, setup):
        objects, engines, _ = setup
        query = SpatialKeywordQuery.of(
            (0.0, 0.0), ["zzznope", "qqqmissing"], k=5
        )
        assert_equivalent(engines, objects, query)
        for engine in engines.values():
            assert engine.query((0.0, 0.0), ["zzznope"], k=5).results == []

    def test_k_larger_than_matches(self, setup):
        objects, engines, workload = setup
        query = workload.query(num_keywords=3, k=10_000)
        assert_equivalent(engines, objects, query)


class TestTiesAtK:
    """Handcrafted equidistant objects: the tie group at rank k."""

    @pytest.fixture(scope="class")
    def tie_setup(self):
        # Four corners at distance sqrt(2) from the origin plus one object
        # strictly closer and one strictly farther, all sharing a keyword.
        objects_spec = [
            (1, (0.5, 0.0), "cafe wifi"),
            (2, (1.0, 1.0), "cafe garden"),
            (3, (1.0, -1.0), "cafe garden"),
            (4, (-1.0, 1.0), "cafe garden"),
            (5, (-1.0, -1.0), "cafe garden"),
            (6, (5.0, 5.0), "cafe remote"),
        ]
        from repro.model import SpatialObject

        objects = [SpatialObject(oid, pt, text) for oid, pt, text in objects_spec]
        return objects, build_engines(objects, signature_bytes=4)

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6, 7])
    def test_every_cut_through_the_tie_group(self, tie_setup, k):
        objects, engines = tie_setup
        query = SpatialKeywordQuery.of((0.0, 0.0), ["cafe"], k=k)
        assert_equivalent(engines, objects, query)

    def test_untied_results_are_identical_lists(self, tie_setup):
        """Without ties in play the five lists agree element for element."""
        objects, engines = tie_setup
        lists = {
            kind: engine.query((0.0, 0.0), ["cafe"], k=1).oids
            for kind, engine in engines.items()
        }
        assert all(oids == [1] for oids in lists.values()), lists


@pytest.mark.slow
class TestDifferentialSweep:
    """The full property-style sweep: seeds x sizes x signature lengths."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("n_objects", [120, 400])
    @pytest.mark.parametrize("signature_bytes", [2, 8, 16])
    def test_sweep(self, seed, n_objects, signature_bytes):
        objects = corpus_objects(n_objects, seed=seed)
        engines = build_engines(objects, signature_bytes=signature_bytes)
        workload = WorkloadGenerator(
            objects, engines["ir2"].corpus.analyzer, seed=seed + 100
        )
        for num_keywords in (1, 2, 3):
            for k in (1, 5, 20):
                for query in workload.queries(3, num_keywords, k):
                    assert_equivalent(engines, objects, query)
        # Zero-match and oversized-k edges on every configuration.
        assert_equivalent(
            engines, objects,
            SpatialKeywordQuery.of((0.0, 0.0), ["zzznope"], k=4),
        )
        assert_equivalent(engines, objects, workload.query(2, k=10 * n_objects))
