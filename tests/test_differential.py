"""Cross-index differential harness: the five index kinds are answer-equivalent.

The paper's central claim (§V-VI) is that the IR2-Tree returns *exactly*
the same answers as the R-Tree baseline while doing fewer I/Os — answer
equivalence across index kinds is therefore a perfect test oracle.  This
harness builds every index kind ("ir2", "mir2", "rtree", "iio", "sig")
over the same randomized corpora and checks each one's top-k list against
an index-free brute-force oracle and against the others.

Ties at the k-th distance are part of the contract: every execution
path — tree algorithms (via :func:`repro.core.search.drain_top_k`),
scan baselines, the brute-force oracle, and sharded scatter-gather
(via :class:`repro.shard.merge.TopKMerger`) — drains the whole tie
group at the k-th distance and cuts it by ``(distance, oid)``.  Answers
are therefore **byte-identical** ``(distance, oid)`` lists across every
index kind and every shard count, ties or no ties; the harness asserts
exactly that, plus oracle agreement on each pair.  The exact-tie sweep
(:class:`TestExactTieSweep`) stresses the contract with duplicate
locations and shared keywords so the tie groups are large and exact.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import WorkloadGenerator
from repro.core.engine import SpatialKeywordEngine
from repro.core.query import SpatialKeywordQuery
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.spatial.geometry import target_point_distance

KINDS = ("ir2", "mir2", "rtree", "iio", "sig")

#: Distances across algorithms come from the same float math; the oracle
#: comparison still uses a tolerance to stay robust to summation order.
EPS = 1e-9


def build_engines(objects, signature_bytes=8):
    """One engine per index kind, all over the same object list."""
    engines = {}
    for kind in KINDS:
        engine = SpatialKeywordEngine(index=kind, signature_bytes=signature_bytes)
        engine.add_all(objects)
        engine.build()
        engines[kind] = engine
    return engines


def oracle_matches(objects, analyzer, query):
    """Every true match as (distance, oid), sorted — the full ground truth."""
    terms = analyzer.query_terms(query.keywords)
    return sorted(
        (target_point_distance(obj.point, query.target), obj.oid)
        for obj in objects
        if analyzer.contains_all(obj.text, terms)
    )


def assert_equivalent(engines, objects, query):
    """All engines return the oracle's byte-identical (distance, oid) list.

    ``oracle_matches`` sorts by ``(distance, oid)`` — exactly the
    canonical cut order every execution path implements — so the whole
    list comparison is exact; the per-pair distance check additionally
    stays tolerant so a genuine mismatch reports which object is off
    rather than just "lists differ".
    """
    analyzer = next(iter(engines.values())).corpus.analyzer
    matches = oracle_matches(objects, analyzer, query)
    expected_n = min(query.k, len(matches))
    expected = matches[:expected_n]
    true_distance = dict((oid, d) for d, oid in matches)
    for kind, engine in engines.items():
        execution = engine.query(query.point, query.keywords, k=query.k)
        got = [(r.distance, r.obj.oid) for r in execution.results]
        label = f"{kind} on {query.keywords} k={query.k}"
        assert len(got) == expected_n, label
        oids = [oid for _, oid in got]
        assert len(set(oids)) == len(oids), f"duplicate results: {label}"
        for distance, oid in got:
            assert oid in true_distance, f"non-match returned: {label}"
            assert distance == pytest.approx(true_distance[oid], abs=EPS), label
        assert got == expected, f"answer not byte-identical: {label}"


def corpus_objects(n_objects, seed, vocabulary=300, avg_words=8, clusters=5):
    config = DatasetConfig(
        name=f"diff-{n_objects}-{seed}",
        n_objects=n_objects,
        vocabulary_size=vocabulary,
        avg_unique_words=avg_words,
        clusters=clusters,
        seed=seed,
    )
    return SpatialTextDatasetGenerator(config).generate()


class TestDifferentialFast:
    """A small always-on slice of the sweep (the full sweep is @slow)."""

    @pytest.fixture(scope="class")
    def setup(self):
        objects = corpus_objects(150, seed=11)
        # 4-byte signatures: a deliberately high false-positive rate so
        # the verification step, not signature luck, carries correctness.
        engines = build_engines(objects, signature_bytes=4)
        workload = WorkloadGenerator(
            objects, engines["ir2"].corpus.analyzer, seed=5
        )
        return objects, engines, workload

    @pytest.mark.parametrize("num_keywords,k", [(1, 5), (2, 3), (3, 10)])
    def test_sampled_queries_agree(self, setup, num_keywords, k):
        objects, engines, workload = setup
        for query in workload.queries(4, num_keywords, k):
            assert_equivalent(engines, objects, query)

    def test_zero_match_keywords(self, setup):
        objects, engines, _ = setup
        query = SpatialKeywordQuery.of(
            (0.0, 0.0), ["zzznope", "qqqmissing"], k=5
        )
        assert_equivalent(engines, objects, query)
        for engine in engines.values():
            assert engine.query((0.0, 0.0), ["zzznope"], k=5).results == []

    def test_k_larger_than_matches(self, setup):
        objects, engines, workload = setup
        query = workload.query(num_keywords=3, k=10_000)
        assert_equivalent(engines, objects, query)


class TestTiesAtK:
    """Handcrafted equidistant objects: the tie group at rank k."""

    @pytest.fixture(scope="class")
    def tie_setup(self):
        # Four corners at distance sqrt(2) from the origin plus one object
        # strictly closer and one strictly farther, all sharing a keyword.
        objects_spec = [
            (1, (0.5, 0.0), "cafe wifi"),
            (2, (1.0, 1.0), "cafe garden"),
            (3, (1.0, -1.0), "cafe garden"),
            (4, (-1.0, 1.0), "cafe garden"),
            (5, (-1.0, -1.0), "cafe garden"),
            (6, (5.0, 5.0), "cafe remote"),
        ]
        from repro.model import SpatialObject

        objects = [SpatialObject(oid, pt, text) for oid, pt, text in objects_spec]
        return objects, build_engines(objects, signature_bytes=4)

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6, 7])
    def test_every_cut_through_the_tie_group(self, tie_setup, k):
        objects, engines = tie_setup
        query = SpatialKeywordQuery.of((0.0, 0.0), ["cafe"], k=k)
        assert_equivalent(engines, objects, query)

    def test_untied_results_are_identical_lists(self, tie_setup):
        """Without ties in play the five lists agree element for element."""
        objects, engines = tie_setup
        lists = {
            kind: engine.query((0.0, 0.0), ["cafe"], k=1).oids
            for kind, engine in engines.items()
        }
        assert all(oids == [1] for oids in lists.values()), lists


class TestExactTieSweep:
    """Duplicate locations + shared keywords: large exact tie groups.

    Every engine flavor — brute force, all five index kinds, and
    {1, 2, 5}-shard scatter-gather engines — must return byte-identical
    ``(distance, oid)`` answers for every cut through the tie groups.
    """

    SHARD_COUNTS = (1, 2, 5)

    @pytest.fixture(scope="class")
    def tie_world(self):
        import random

        from repro.model import SpatialObject
        from repro.shard import ShardedEngine

        # A 4x4 grid of locations, each hosting 4 objects with exactly
        # duplicated coordinates; keywords overlap heavily so queries
        # match whole co-located groups and ties are exact floats.
        rng = random.Random(99)
        themes = ["cafe wifi", "cafe garden", "cafe wifi garden", "cafe bar"]
        objects = []
        oid = 0
        for gx in range(4):
            for gy in range(4):
                point = (float(gx) * 2.0, float(gy) * 2.0)
                for _ in range(4):
                    objects.append(
                        SpatialObject(oid, point, rng.choice(themes))
                    )
                    oid += 1
        engines = dict(build_engines(objects, signature_bytes=4))
        for n_shards in self.SHARD_COUNTS:
            sharded = ShardedEngine(n_shards=n_shards, index="ir2")
            sharded.add_all(objects)
            sharded.build()
            engines[f"sharded-ir2x{n_shards}"] = sharded
        yield objects, engines
        for n_shards in self.SHARD_COUNTS:
            engines[f"sharded-ir2x{n_shards}"].close()

    @pytest.mark.parametrize("keywords", [("cafe",), ("cafe", "wifi"),
                                          ("garden",)])
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 7, 8, 16, 64])
    def test_byte_identical_across_all_engines(self, tie_world, keywords, k):
        objects, engines = tie_world
        # Query from a grid point so several whole groups tie exactly;
        # also from an off-grid point for asymmetric tie groups.
        for point in ((2.0, 2.0), (1.0, 5.0)):
            query = SpatialKeywordQuery.of(point, keywords, k)
            assert_equivalent(engines, objects, query)

    def test_matches_brute_force_reference(self, tie_world):
        from repro.core.search import brute_force_top_k

        objects, engines = tie_world
        analyzer = engines["ir2"].corpus.analyzer
        query = SpatialKeywordQuery.of((2.0, 2.0), ("cafe",), 6)
        reference = [
            (r.distance, r.obj.oid)
            for r in brute_force_top_k(objects, analyzer, query)
        ]
        for kind, engine in engines.items():
            got = [
                (r.distance, r.obj.oid)
                for r in engine.search(query).results
            ]
            assert got == reference, kind


@pytest.mark.slow
class TestDifferentialSweep:
    """The full property-style sweep: seeds x sizes x signature lengths."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("n_objects", [120, 400])
    @pytest.mark.parametrize("signature_bytes", [2, 8, 16])
    def test_sweep(self, seed, n_objects, signature_bytes):
        objects = corpus_objects(n_objects, seed=seed)
        engines = build_engines(objects, signature_bytes=signature_bytes)
        workload = WorkloadGenerator(
            objects, engines["ir2"].corpus.analyzer, seed=seed + 100
        )
        for num_keywords in (1, 2, 3):
            for k in (1, 5, 20):
                for query in workload.queries(3, num_keywords, k):
                    assert_equivalent(engines, objects, query)
        # Zero-match and oversized-k edges on every configuration.
        assert_equivalent(
            engines, objects,
            SpatialKeywordQuery.of((0.0, 0.0), ["zzznope"], k=4),
        )
        assert_equivalent(engines, objects, workload.query(2, k=10 * n_objects))
