"""Unit and property tests for the node split strategies."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TreeInvariantError
from repro.spatial import LinearSplit, QuadraticSplit, Rect
from repro.spatial.rtree import Entry


def _entries(points):
    return [Entry(i, Rect.from_point(p)) for i, p in enumerate(points)]


STRATEGIES = [QuadraticSplit(), LinearSplit()]


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
class TestCommonBehaviour:
    def test_partition_is_complete_and_disjoint(self, strategy):
        entries = _entries([(i, i % 3) for i in range(10)])
        a, b = strategy.split(entries, min_fill=2)
        refs = sorted(e.child_ref for e in a + b)
        assert refs == list(range(10))
        assert not set(e.child_ref for e in a) & set(e.child_ref for e in b)

    def test_min_fill_respected(self, strategy):
        entries = _entries([(float(i), 0.0) for i in range(9)])
        a, b = strategy.split(entries, min_fill=4)
        assert len(a) >= 4 and len(b) >= 4

    def test_two_entries(self, strategy):
        entries = _entries([(0.0, 0.0), (5.0, 5.0)])
        a, b = strategy.split(entries, min_fill=1)
        assert len(a) == len(b) == 1

    def test_identical_points_still_split(self, strategy):
        entries = _entries([(1.0, 1.0)] * 6)
        a, b = strategy.split(entries, min_fill=2)
        assert len(a) + len(b) == 6
        assert min(len(a), len(b)) >= 2

    def test_too_few_entries_rejected(self, strategy):
        with pytest.raises(TreeInvariantError):
            strategy.split(_entries([(0.0, 0.0)]), min_fill=1)

    def test_infeasible_min_fill_rejected(self, strategy):
        with pytest.raises(TreeInvariantError):
            strategy.split(_entries([(0.0, 0.0), (1.0, 1.0)]), min_fill=2)


class TestQuadraticQuality:
    def test_separates_two_obvious_clusters(self):
        left = [(random.Random(1).uniform(0, 1), random.Random(i).uniform(0, 1)) for i in range(5)]
        cluster_a = [(x, y) for x, y in left]
        cluster_b = [(x + 100.0, y + 100.0) for x, y in left]
        entries = _entries(cluster_a + cluster_b)
        a, b = QuadraticSplit().split(entries, min_fill=2)
        groups = (
            {e.child_ref for e in a},
            {e.child_ref for e in b},
        )
        assert {frozenset(range(5)), frozenset(range(5, 10))} == {
            frozenset(g) for g in groups
        }

    def test_pick_seeds_maximizes_waste(self):
        # Two far apart, the rest near origin: seeds must be the far pair.
        points = [(0.0, 0.0), (0.1, 0.1), (100.0, 0.0), (0.2, 0.0)]
        entries = _entries(points)
        i, j = QuadraticSplit._pick_seeds(entries)
        assert {entries[i].child_ref, entries[j].child_ref} & {2} == {2}


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
@given(
    points=st.lists(
        st.tuples(
            st.floats(-1000, 1000, allow_nan=False),
            st.floats(-1000, 1000, allow_nan=False),
        ),
        min_size=4,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_split_preserves_entries(strategy, points):
    entries = _entries(points)
    min_fill = max(1, len(entries) // 3)
    a, b = strategy.split(entries, min_fill)
    assert len(a) + len(b) == len(entries)
    assert len(a) >= min_fill and len(b) >= min_fill
    assert sorted(e.child_ref for e in a + b) == sorted(
        e.child_ref for e in entries
    )
