"""Unit tests for the corpus (object file + vocabulary statistics)."""

from __future__ import annotations

import pytest

from repro.core import Corpus
from repro.model import SpatialObject


class TestPopulation:
    def test_add_returns_pointer(self):
        corpus = Corpus()
        pointer = corpus.add(SpatialObject(1, (0.0, 0.0), "pool spa"))
        assert pointer == 0
        assert len(corpus) == 1

    def test_vocabulary_tracks_documents(self):
        corpus = Corpus()
        corpus.add(SpatialObject(1, (0.0, 0.0), "pool spa"))
        corpus.add(SpatialObject(2, (1.0, 1.0), "pool gym"))
        assert corpus.vocabulary.document_frequency("pool") == 2
        assert corpus.vocabulary.unique_words == 3

    def test_dimensionality_enforced(self):
        corpus = Corpus()
        corpus.add(SpatialObject(1, (0.0, 0.0), "a"))
        with pytest.raises(ValueError):
            corpus.add(SpatialObject(2, (0.0, 0.0, 0.0), "b"))

    def test_dims_default_two(self):
        assert Corpus().dims == 2

    def test_dims_follow_first_object(self):
        corpus = Corpus()
        corpus.add(SpatialObject(1, (0.0, 0.0, 0.0), "a"))
        assert corpus.dims == 3


class TestAccess:
    def test_term_resolver_counts_io(self, hotels_corpus):
        pointer = next(iter(hotels_corpus.iter_items()))[0]
        hotels_corpus.device.stats.reset()
        terms = hotels_corpus.term_resolver(pointer)
        assert "internet" in terms or len(terms) > 0
        assert hotels_corpus.device.stats.objects_loaded == 1

    def test_iter_items_roundtrip(self, hotels_corpus, hotels_objects):
        seen = {obj.oid: obj for _, obj in hotels_corpus.iter_items()}
        assert seen == {obj.oid: obj for obj in hotels_objects}

    def test_objects_iteration(self, hotels_corpus):
        assert sum(1 for _ in hotels_corpus.objects()) == 8


class TestStats:
    def test_empty_corpus_stats(self):
        stats = Corpus().stats()
        assert stats.total_objects == 0
        assert stats.size_mb == 0.0

    def test_stats_reflect_content(self, hotels_corpus):
        stats = hotels_corpus.stats()
        assert stats.total_objects == 8
        assert stats.unique_words == hotels_corpus.vocabulary.unique_words
        assert stats.avg_unique_words_per_object > 3
        assert stats.avg_blocks_per_object >= 1.0
        assert stats.size_mb > 0

    def test_stats_row_shape(self, hotels_corpus):
        row = hotels_corpus.stats().row()
        assert len(row) == 5
        assert row[1] == 8
