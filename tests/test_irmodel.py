"""Unit and property tests for the IR scoring model and its upper bound."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import Vocabulary, ir_score, tf_idf_score, upper_bound_ir_score
from repro.text.analyzer import DEFAULT_ANALYZER


@pytest.fixture
def vocabulary():
    vocab = Vocabulary()
    vocab.add_document({"pool", "spa", "internet"})
    vocab.add_document({"pool", "sauna"})
    vocab.add_document({"pool", "internet", "golf"})
    return vocab


class TestIrScore:
    def test_no_match_scores_zero(self, vocabulary):
        assert ir_score("sauna golf", ["tennis"], vocabulary, DEFAULT_ANALYZER) == 0.0

    def test_empty_query_scores_zero(self, vocabulary):
        assert ir_score("pool", [], vocabulary, DEFAULT_ANALYZER) == 0.0

    def test_empty_document_scores_zero(self, vocabulary):
        assert ir_score("", ["pool"], vocabulary, DEFAULT_ANALYZER) == 0.0

    def test_more_matches_score_higher(self, vocabulary):
        one = ir_score("pool sauna deck", ["pool", "internet"], vocabulary, DEFAULT_ANALYZER)
        two = ir_score("pool internet bar", ["pool", "internet"], vocabulary, DEFAULT_ANALYZER)
        assert two > one

    def test_rare_term_scores_higher_than_common(self, vocabulary):
        rare = ir_score("spa lounge", ["spa"], vocabulary, DEFAULT_ANALYZER)
        common = ir_score("pool lounge", ["pool"], vocabulary, DEFAULT_ANALYZER)
        assert rare > common  # df(spa)=1 < df(pool)=3

    def test_longer_document_scores_lower(self, vocabulary):
        short = ir_score("pool", ["pool"], vocabulary, DEFAULT_ANALYZER)
        long = ir_score("pool " + "filler " * 50, ["pool"], vocabulary, DEFAULT_ANALYZER)
        assert short > long

    def test_binary_tf_ignores_repetition(self, vocabulary):
        """Default model is binary-tf: repeating a keyword only hurts via
        the length normalization."""
        once = ir_score("pool bar", ["pool"], vocabulary, DEFAULT_ANALYZER)
        thrice = ir_score("pool pool pool bar", ["pool"], vocabulary, DEFAULT_ANALYZER)
        assert once > thrice


class TestTfIdfVariant:
    def test_repetition_rewarded(self, vocabulary):
        once = tf_idf_score("pool bar bar bar", ["pool"], vocabulary, DEFAULT_ANALYZER)
        thrice = tf_idf_score("pool pool pool bar", ["pool"], vocabulary, DEFAULT_ANALYZER)
        assert thrice > once

    def test_no_match_zero(self, vocabulary):
        assert tf_idf_score("sauna", ["tennis"], vocabulary, DEFAULT_ANALYZER) == 0.0

    def test_empty_cases(self, vocabulary):
        assert tf_idf_score("", ["pool"], vocabulary, DEFAULT_ANALYZER) == 0.0
        assert tf_idf_score("pool", [], vocabulary, DEFAULT_ANALYZER) == 0.0


class TestUpperBound:
    def test_empty_matched_set(self):
        assert upper_bound_ir_score([]) == 0.0

    def test_single_term(self):
        assert upper_bound_ir_score([2.0]) == pytest.approx(2.0)

    def test_skewed_idfs_use_best_prefix(self):
        """With one dominant idf the best 'imaginary document' matches only
        that term (the naive all-terms bound would be lower and *wrong* as
        a bound for subset-matching documents)."""
        bound = upper_bound_ir_score([10.0, 0.1])
        assert bound == pytest.approx(10.0)  # prefix of size 1 wins

    def test_uniform_idfs_use_all_terms(self):
        bound = upper_bound_ir_score([1.0, 1.0, 1.0])
        assert bound == pytest.approx(3.0 / (1.0 + math.log(3)))


@given(
    matched=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=6),
    extra_words=st.integers(0, 30),
    subset_seed=st.integers(0, 2**16),
)
@settings(max_examples=150, deadline=None)
def test_property_upper_bound_is_admissible(matched, extra_words, subset_seed):
    """No document matching any subset of the terms can beat the bound.

    Builds a random document containing a random subset of the matched
    terms (each once) plus filler words, scores it with the real model,
    and checks it never exceeds ``upper_bound_ir_score`` of the full set.
    """
    rng = random.Random(subset_seed)
    terms = [f"kw{i}" for i in range(len(matched))]
    vocab = Vocabulary()
    # Realize the requested idfs approximately by controlling df over a
    # fixed corpus size, then just use the actual idfs for both sides.
    for i in range(20):
        document = {t for j, t in enumerate(terms) if i % (j + 1) == 0}
        vocab.add_document(document or {"filler"})
    subset = [t for t in terms if rng.random() < 0.7]
    body = " ".join(subset + [f"filler{i}" for i in range(extra_words)])
    score = ir_score(body, terms, vocab, DEFAULT_ANALYZER)
    bound = upper_bound_ir_score(vocab.idf(t) for t in terms)
    assert score <= bound + 1e-9
