"""Unit tests for the MIR2-Tree (per-level signatures, costly upkeep)."""

from __future__ import annotations

import random

import pytest

from repro.core import Corpus, MIR2Tree, plan_level_lengths
from repro.core.schemes import MIR2Scheme
from repro.model import SpatialObject
from repro.storage import InMemoryBlockDevice, PageStore
from repro.text import Signature


def make_corpus(n=40, vocab=30, words=5, seed=1):
    rng = random.Random(seed)
    corpus = Corpus()
    for i in range(n):
        text = " ".join(f"w{rng.randrange(vocab)}" for _ in range(words))
        corpus.add(SpatialObject(i, (rng.uniform(0, 50), rng.uniform(0, 50)), text))
    return corpus


def make_tree(corpus, level_lengths=(4, 8, 16), capacity=4):
    pages = PageStore(InMemoryBlockDevice())
    return MIR2Tree(pages, level_lengths, corpus.term_resolver, capacity=capacity)


def fill(tree, corpus):
    for pointer, obj in corpus.iter_items():
        tree.insert_object(pointer, obj.point, corpus.analyzer.terms(obj.text))


class TestLevelLengths:
    def test_lengths_clamped_to_last(self):
        corpus = make_corpus(4)
        tree = make_tree(corpus, level_lengths=(4, 8))
        assert tree.scheme.length_for_level(0) == 4
        assert tree.scheme.length_for_level(1) == 8
        assert tree.scheme.length_for_level(7) == 8

    def test_empty_level_list_rejected(self):
        corpus = make_corpus(2)
        with pytest.raises(ValueError):
            make_tree(corpus, level_lengths=())

    def test_planned_levels_are_nondecreasing(self):
        lengths = plan_level_lengths(8, 14.0, 70_000, 113)
        assert lengths[0] == 8
        assert all(b >= a for a, b in zip(lengths, lengths[1:]))

    def test_planned_levels_saturate_at_vocabulary(self):
        lengths = plan_level_lengths(8, 14.0, 1_000, 113)
        # Once a subtree covers the whole vocabulary the length stops
        # growing: the tail of the list is constant.
        assert lengths[-1] == lengths[-2]

    def test_planned_levels_degenerate_corpus(self):
        assert plan_level_lengths(8, 0.0, 0, 113) == [8] * 8

    def test_with_planned_levels_constructor(self):
        corpus = make_corpus(30)
        pages = PageStore(InMemoryBlockDevice())
        tree = MIR2Tree.with_planned_levels(
            pages, 4, 5.0, 30, corpus.term_resolver, capacity=4
        )
        fill(tree, corpus)
        tree.validate()


class TestStructure:
    def test_entries_store_level_appropriate_lengths(self):
        corpus = make_corpus(60, seed=2)
        tree = make_tree(corpus)
        fill(tree, corpus)
        assert tree.height >= 2
        for node in tree.iter_nodes():
            expected = tree.scheme.length_for_level(node.level)
            for entry in node.entries:
                assert len(entry.signature) == expected

    def test_parent_signature_covers_subtree_objects(self):
        """A parent entry at level l+1 must match every term of every
        object beneath it, hashed at level l+1's length (no false
        negatives across levels)."""
        corpus = make_corpus(60, seed=3)
        tree = make_tree(corpus)
        fill(tree, corpus)
        scheme: MIR2Scheme = tree.mir_scheme
        for node in tree.iter_nodes():
            if node.is_leaf:
                continue
            factory = scheme.factory_for_level(node.level)
            for entry in node.entries:
                child = tree._load_uncounted(entry.child_ref)
                entry_sig = Signature.from_bytes(entry.signature)
                for pointer in MIR2Scheme.subtree_object_pointers(tree, child):
                    terms = corpus.term_resolver(pointer)
                    for term in terms:
                        assert entry_sig.matches(factory.for_word(term))

    def test_validate_after_mixed_workload(self):
        corpus = make_corpus(50, seed=4)
        tree = make_tree(corpus)
        fill(tree, corpus)
        items = list(corpus.iter_items())
        rng = random.Random(9)
        for pointer, obj in rng.sample(items, 20):
            assert tree.delete_object(pointer, obj.point) is True
        tree.validate()


class TestMaintenanceCost:
    def test_insert_reads_underlying_objects(self):
        """MIR2 maintenance must hit the object file (the paper's cost)."""
        corpus = make_corpus(40, seed=5)
        tree = make_tree(corpus)
        fill(tree, corpus)
        assert tree.height >= 2
        extra = SpatialObject(999, (25.0, 25.0), "w1 w2 w3")
        pointer = corpus.add(extra)
        corpus.device.stats.reset()
        tree.insert_object(pointer, extra.point, {"w1", "w2", "w3"})
        assert corpus.device.stats.objects_loaded > 0

    def test_ir2_style_insert_does_not_read_objects(self):
        """Contrast: the IR2-Tree's insert never touches the object file."""
        from repro.core import IR2Tree
        from repro.text import HashSignatureFactory

        corpus = make_corpus(40, seed=6)
        pages = PageStore(InMemoryBlockDevice())
        tree = IR2Tree(pages, HashSignatureFactory(8), capacity=4)
        for pointer, obj in corpus.iter_items():
            tree.insert_object(pointer, obj.point, corpus.analyzer.terms(obj.text))
        corpus.device.stats.reset()
        tree.insert_object(10_000, (25.0, 25.0), {"w1"})
        assert corpus.device.stats.objects_loaded == 0


class TestQueryHelpers:
    def test_matcher_uses_level_specific_signatures(self):
        corpus = make_corpus(60, seed=7)
        tree = make_tree(corpus)
        fill(tree, corpus)
        matcher = tree.signature_matcher(["w1"])
        # Must accept, at every level, entries over subtrees containing w1.
        for node in tree.iter_nodes():
            if node.is_leaf:
                continue
            for entry in node.entries:
                child = tree._load_uncounted(entry.child_ref)
                has_w1 = any(
                    "w1" in corpus.term_resolver(p)
                    for p in MIR2Scheme.subtree_object_pointers(tree, child)
                )
                if has_w1:
                    assert matcher(entry, node)

    def test_matched_terms_per_level(self):
        corpus = make_corpus(30, seed=8)
        tree = make_tree(corpus)
        fill(tree, corpus)
        node = tree._load_uncounted(tree.root_id)
        for entry in node.entries:
            matched = tree.matched_terms(entry, node, ["w0", "w1", "w2"])
            assert set(matched) <= {"w0", "w1", "w2"}
