"""Unit tests for the signature design mathematics [FC84, MC94]."""

from __future__ import annotations

import math
import random

import pytest

from repro.text import (
    HashSignatureFactory,
    expected_weight_fraction,
    false_positive_probability,
    false_positive_rate_for_query,
    optimal_bits_per_word,
    optimal_length_bits,
    optimal_length_bytes,
    scaled_length_bytes,
)


class TestFalsePositiveModel:
    def test_zero_words_zero_probability(self):
        assert false_positive_probability(64, 0, 3) == 0.0

    def test_probability_in_unit_interval(self):
        p = false_positive_probability(64, 20, 3)
        assert 0.0 < p < 1.0

    def test_monotone_in_words(self):
        p_few = false_positive_probability(64, 5, 3)
        p_many = false_positive_probability(64, 50, 3)
        assert p_many > p_few

    def test_monotone_in_length(self):
        p_short = false_positive_probability(32, 20, 3)
        p_long = false_positive_probability(512, 20, 3)
        assert p_long < p_short

    def test_saturated_signature_always_matches(self):
        p = false_positive_probability(8, 10_000, 3)
        assert p == pytest.approx(1.0, abs=1e-6)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            false_positive_probability(0, 5, 3)
        with pytest.raises(ValueError):
            false_positive_probability(8, 5, 0)

    def test_conjunctive_query_rate(self):
        single = false_positive_probability(64, 20, 3)
        double = false_positive_rate_for_query(64, 20, 3, 2)
        assert double == pytest.approx(single**2)


class TestOptimalDesign:
    def test_optimal_m_formula(self):
        # F=1024 bits, D=237 words: m = 1024*ln2/237 ~= 3.
        assert optimal_bits_per_word(1024, 237) == 3

    def test_optimal_m_at_least_one(self):
        assert optimal_bits_per_word(8, 10_000) == 1
        assert optimal_bits_per_word(8, 0) == 1

    def test_optimal_design_point_half_full(self):
        """At the optimum roughly half the bits are set."""
        length = 1024
        distinct = 237
        m = optimal_bits_per_word(length, distinct)
        fill = expected_weight_fraction(length, distinct, m)
        assert 0.35 < fill < 0.65

    def test_optimal_length_meets_target(self):
        distinct = 100
        target = 0.01
        length = optimal_length_bits(distinct, target)
        m = optimal_bits_per_word(length, distinct)
        assert false_positive_probability(length, distinct, m) <= target * 1.5

    def test_optimal_length_bytes_rounds_up(self):
        bits = optimal_length_bits(50, 0.05)
        assert optimal_length_bytes(50, 0.05) == -(-bits // 8)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            optimal_length_bits(10, 0.0)
        with pytest.raises(ValueError):
            optimal_length_bits(10, 1.5)

    def test_paper_hotels_configuration_is_near_optimal(self):
        """189-byte signatures for ~349-word documents give m ~= 3: the
        paper's Hotels design sits at the classic operating point."""
        m = optimal_bits_per_word(189 * 8, 349)
        assert m == 3


class TestScaledLength:
    def test_identity_at_leaf(self):
        assert scaled_length_bytes(8, 14, 14) == 8

    def test_scales_linearly_with_distinct_words(self):
        assert scaled_length_bytes(8, 14, 140) == 80

    def test_never_below_leaf_length(self):
        assert scaled_length_bytes(8, 14, 7) == 8

    def test_invalid_leaf_length(self):
        with pytest.raises(ValueError):
            scaled_length_bytes(0, 14, 14)


class TestModelAgainstReality:
    def test_empirical_rate_tracks_model(self):
        """Monte-Carlo check of the analytic false-positive formula."""
        rng = random.Random(3)
        length_bytes, m, distinct = 16, 3, 20
        factory = HashSignatureFactory(length_bytes, m, seed=7)
        vocabulary = [f"word{i}" for i in range(2_000)]
        hits = 0
        probes = 0
        for _ in range(150):
            doc = rng.sample(vocabulary, distinct)
            sig = factory.for_words(doc)
            members = set(doc)
            for _ in range(20):
                probe = rng.choice(vocabulary)
                if probe in members:
                    continue
                probes += 1
                if sig.matches(factory.for_word(probe)):
                    hits += 1
        empirical = hits / probes
        analytic = false_positive_probability(length_bytes * 8, distinct, m)
        assert empirical == pytest.approx(analytic, abs=0.03)

    def test_expected_weight_tracks_reality(self):
        rng = random.Random(4)
        factory = HashSignatureFactory(32, 3, seed=9)
        doc = [f"word{i}" for i in rng.sample(range(10_000), 40)]
        fill = factory.for_words(doc).weight() / 256
        expected = expected_weight_fraction(256, 40, 3)
        assert fill == pytest.approx(expected, abs=0.12)
