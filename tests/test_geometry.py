"""Unit and property tests for points and MBRs."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import Rect, point_distance

coords = st.floats(-1e6, 1e6, allow_nan=False)


def rect_strategy(dims=2):
    return st.lists(
        st.tuples(coords, coords), min_size=dims, max_size=dims
    ).map(
        lambda pairs: Rect(
            tuple(min(a, b) for a, b in pairs), tuple(max(a, b) for a, b in pairs)
        )
    )


def point_strategy(dims=2):
    return st.lists(coords, min_size=dims, max_size=dims).map(tuple)


class TestPointDistance:
    def test_paper_example_h4(self):
        """distance(H4=[39.5,116.2], [30.5,100.0]) = 18.5 (Example 1)."""
        assert point_distance((39.5, 116.2), (30.5, 100.0)) == pytest.approx(
            18.5, abs=0.05
        )

    def test_paper_example_h7(self):
        """distance(H7=[-33.2,-70.4], [30.5,100.0]) = 181.9 (Example 2)."""
        assert point_distance((-33.2, -70.4), (30.5, 100.0)) == pytest.approx(
            181.9, abs=0.05
        )

    def test_zero_distance(self):
        assert point_distance((1.0, 2.0), (1.0, 2.0)) == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            point_distance((1.0,), (1.0, 2.0))

    def test_three_dimensions(self):
        assert point_distance((0, 0, 0), (1, 2, 2)) == pytest.approx(3.0)


class TestRectBasics:
    def test_from_point_is_degenerate(self):
        rect = Rect.from_point((3.0, 4.0))
        assert rect.lo == rect.hi == (3.0, 4.0)
        assert rect.area() == 0.0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Rect((1.0, 0.0), (0.0, 1.0))

    def test_corner_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Rect((0.0,), (1.0, 1.0))

    def test_area_and_margin(self):
        rect = Rect((0.0, 0.0), (2.0, 3.0))
        assert rect.area() == 6.0
        assert rect.margin() == 5.0

    def test_center(self):
        assert Rect((0.0, 0.0), (2.0, 4.0)).center == (1.0, 2.0)

    def test_coords_roundtrip(self):
        rect = Rect((0.0, -1.0), (2.0, 5.0))
        assert Rect.from_coords(rect.to_coords()) == rect

    def test_from_coords_odd_arity(self):
        with pytest.raises(ValueError):
            Rect.from_coords((1.0, 2.0, 3.0))

    def test_union_all(self):
        rects = [Rect.from_point((i, -i)) for i in range(3)]
        union = Rect.union_all(rects)
        assert union == Rect((0.0, -2.0), (2.0, 0.0))

    def test_union_all_empty(self):
        with pytest.raises(ValueError):
            Rect.union_all([])


class TestRelations:
    def test_intersects_shared_edge(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((1.0, 0.0), (2.0, 1.0))
        assert a.intersects(b)

    def test_disjoint(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((2.0, 2.0), (3.0, 3.0))
        assert not a.intersects(b)

    def test_contains_point_boundary(self):
        rect = Rect((0.0, 0.0), (1.0, 1.0))
        assert rect.contains_point((1.0, 0.0))
        assert not rect.contains_point((1.1, 0.0))

    def test_contains_rect(self):
        outer = Rect((0.0, 0.0), (10.0, 10.0))
        inner = Rect((1.0, 1.0), (2.0, 2.0))
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)

    def test_enlargement(self):
        rect = Rect((0.0, 0.0), (1.0, 1.0))
        grown = rect.enlargement(Rect.from_point((2.0, 0.5)))
        assert grown == pytest.approx(1.0)  # becomes 2x1


class TestMinDistance:
    def test_inside_is_zero(self):
        rect = Rect((0.0, 0.0), (4.0, 4.0))
        assert rect.min_distance((2.0, 2.0)) == 0.0

    def test_side_projection(self):
        rect = Rect((0.0, 0.0), (4.0, 4.0))
        assert rect.min_distance((6.0, 2.0)) == 2.0

    def test_corner(self):
        rect = Rect((0.0, 0.0), (4.0, 4.0))
        assert rect.min_distance((7.0, 8.0)) == 5.0

    def test_paper_n7_mbr_distance(self):
        """MBR of {H4, H5} has distance 9.0 from [30.5, 100.0] (Example 1)."""
        mbr = Rect.from_point((39.5, 116.2)).union(Rect.from_point((51.3, -0.5)))
        assert mbr.min_distance((30.5, 100.0)) == pytest.approx(9.0, abs=0.01)

    def test_max_distance_at_least_min(self):
        rect = Rect((0.0, 0.0), (4.0, 4.0))
        point = (10.0, -3.0)
        assert rect.max_distance(point) >= rect.min_distance(point)


@given(rect=rect_strategy(), point=point_strategy())
@settings(max_examples=120, deadline=None)
def test_property_mindist_lower_bounds_all_contents(rect, point):
    """MINDIST never exceeds the distance to any point inside the MBR."""
    for corner in (rect.lo, rect.hi, rect.center):
        assert rect.min_distance(point) <= point_distance(corner, point) + 1e-6


@given(a=rect_strategy(), b=rect_strategy())
@settings(max_examples=120, deadline=None)
def test_property_union_contains_both(a, b):
    union = a.union(b)
    assert union.contains_rect(a)
    assert union.contains_rect(b)
    assert union.area() >= max(a.area(), b.area())


@given(a=rect_strategy(), b=rect_strategy())
@settings(max_examples=120, deadline=None)
def test_property_intersects_symmetric(a, b):
    assert a.intersects(b) == b.intersects(a)


@given(rect=rect_strategy(), point=point_strategy())
@settings(max_examples=120, deadline=None)
def test_property_mindist_zero_iff_contained(rect, point):
    if rect.contains_point(point):
        assert rect.min_distance(point) == 0.0
    else:
        # Distance of a point outside the rect is positive, except when
        # the gap is so small its square underflows float64 (< ~1e-154).
        gap = max(
            max(l - c, c - h, 0.0)
            for l, h, c in zip(rect.lo, rect.hi, point)
        )
        if gap > 1e-150:
            assert rect.min_distance(point) > 0.0
