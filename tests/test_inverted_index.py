"""Unit tests for the disk-resident inverted index."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.storage import InMemoryBlockDevice
from repro.text import InvertedIndex
from repro.text.analyzer import DEFAULT_ANALYZER

DOCS = [
    (0, "tennis court gift shop spa internet"),
    (100, "wireless internet pool golf course"),
    (200, "spa continental suites pool"),
    (300, "sauna pool conference rooms"),
]


@pytest.fixture
def index():
    idx = InvertedIndex(InMemoryBlockDevice(block_size=64), DEFAULT_ANALYZER)
    idx.build(DOCS)
    return idx


class TestBuildAndRetrieve:
    def test_postings_sorted_pointers(self, index):
        assert index.postings("pool") == [100, 200, 300]
        assert index.postings("internet") == [0, 100]

    def test_unknown_term_empty(self, index):
        assert index.postings("helicopter") == []

    def test_terms_and_len(self, index):
        assert "pool" in index
        assert "helicopter" not in index
        assert len(index) == len(set(index.terms()))

    def test_document_frequency_no_io(self, index):
        index.device.stats.reset()
        assert index.document_frequency("pool") == 3
        assert index.device.stats.total_reads == 0

    def test_retrieval_costs_extent_reads(self, index):
        index.device.stats.reset()
        index.postings("pool")
        assert index.device.stats.category_reads("postings") >= 1

    def test_duplicate_pointers_deduplicated(self):
        idx = InvertedIndex(InMemoryBlockDevice(block_size=64), DEFAULT_ANALYZER)
        idx.build([(1, "pool pool pool")])
        assert idx.postings("pool") == [1]


class TestConjunction:
    def test_paper_example_2_intersection(self, index):
        """{"internet","pool"} -> exactly H2, H7's analogues (Example 2)."""
        assert index.retrieve_conjunction(["internet", "pool"]) == [100]

    def test_single_keyword(self, index):
        assert index.retrieve_conjunction(["spa"]) == [0, 200]

    def test_disjoint_keywords_empty(self, index):
        assert index.retrieve_conjunction(["tennis", "sauna"]) == []

    def test_unknown_keyword_short_circuits(self, index):
        index.device.stats.reset()
        assert index.retrieve_conjunction(["zzz", "pool"]) == []
        # The missing term is fetched first (shortest list) => no reads at
        # all for the existing keyword's list.
        assert index.device.stats.category_reads("postings") == 0

    def test_multiword_keyword_split(self, index):
        assert index.retrieve_conjunction(["wireless internet"]) == [100]

    def test_empty_keywords_rejected(self, index):
        with pytest.raises(QueryError):
            index.retrieve_conjunction([])


class TestMaintenance:
    def test_add_document(self, index):
        index.add(400, "new pool lounge")
        assert index.postings("pool") == [100, 200, 300, 400]
        assert index.postings("lounge") == [400]

    def test_add_is_idempotent_per_pointer(self, index):
        index.add(100, "pool")
        assert index.postings("pool") == [100, 200, 300]

    def test_remove_document(self, index):
        index.remove(200, DOCS[2][1])
        assert index.postings("pool") == [100, 300]
        assert index.postings("suites") == []
        assert "suites" not in index

    def test_remove_unknown_pointer_noop(self, index):
        index.remove(999, "pool")
        assert index.postings("pool") == [100, 200, 300]

    def test_long_posting_list_spans_blocks(self):
        idx = InvertedIndex(InMemoryBlockDevice(block_size=64), DEFAULT_ANALYZER)
        idx.build([(i * 10, "crowded") for i in range(100)])
        postings = idx.postings("crowded")
        assert postings == [i * 10 for i in range(100)]
        idx.device.stats.reset()
        idx.postings("crowded")
        stats = idx.device.stats
        assert stats.random_reads == 1
        assert stats.sequential_reads >= 5  # 400 bytes over 64-byte blocks


class TestFootprint:
    def test_size_accounts_postings_and_lexicon(self, index):
        total_postings = sum(
            index.document_frequency(term) for term in index.terms()
        )
        assert index.postings_bytes == 4 * total_postings
        assert index.lexicon_bytes > 0
        expected = index.postings_bytes + index.lexicon_bytes
        assert index.size_bytes == expected
        assert index.size_mb == pytest.approx(expected / (1024 * 1024))

    def test_updates_create_dead_space(self, index):
        assert index.dead_bytes == 0
        index.add(500, "pool")  # rewrites the pool list at the log tail
        assert index.dead_bytes > 0

    def test_compact_reclaims_dead_space(self, index):
        before = {term: index.postings(term) for term in sorted(index.terms())}
        index.add(500, "pool spa")
        index.remove(500, "pool spa")
        assert index.dead_bytes > 0
        index.compact()
        assert index.dead_bytes == 0
        after = {term: index.postings(term) for term in sorted(index.terms())}
        assert after == before

    def test_small_lists_share_blocks(self):
        """Byte packing: many tiny lists occupy far fewer blocks than one
        block per term."""
        idx = InvertedIndex(InMemoryBlockDevice(block_size=4096), DEFAULT_ANALYZER)
        idx.build([(i, f"term{i}") for i in range(100)])  # 100 4-byte lists
        assert idx.device.num_blocks <= 2


class TestGallopingIntersection:
    def test_basic(self):
        from repro.text.inverted_index import intersect_sorted

        assert intersect_sorted([1, 3, 5], [2, 3, 4, 5, 6]) == [3, 5]

    def test_disjoint(self):
        from repro.text.inverted_index import intersect_sorted

        assert intersect_sorted([1, 2], [3, 4]) == []

    def test_empty_sides(self):
        from repro.text.inverted_index import intersect_sorted

        assert intersect_sorted([], [1, 2]) == []
        assert intersect_sorted([1, 2], []) == []

    def test_skewed_lengths(self):
        from repro.text.inverted_index import intersect_sorted

        long = list(range(0, 100_000, 3))
        short = [9, 300, 3_003, 99_999]
        expected = sorted(set(short) & set(long))
        assert intersect_sorted(short, long) == expected
        assert intersect_sorted(long, short) == expected
