"""Unit tests for the text analyzer."""

from __future__ import annotations

from repro.text import DEFAULT_ANALYZER, DEFAULT_STOPWORDS, Analyzer


class TestTokens:
    def test_lowercases_by_default(self):
        assert list(DEFAULT_ANALYZER.tokens("Wireless Internet")) == [
            "wireless",
            "internet",
        ]

    def test_punctuation_splits(self):
        tokens = list(DEFAULT_ANALYZER.tokens("tennis court, gift shop, spa"))
        assert tokens == ["tennis", "court", "gift", "shop", "spa"]

    def test_digits_kept(self):
        assert list(DEFAULT_ANALYZER.tokens("route 66 diner")) == [
            "route",
            "66",
            "diner",
        ]

    def test_underscores_split(self):
        assert list(DEFAULT_ANALYZER.tokens("free_lunch")) == ["free", "lunch"]

    def test_case_preserved_when_disabled(self):
        analyzer = Analyzer(lowercase=False)
        assert list(analyzer.tokens("Hotel A")) == ["Hotel", "A"]

    def test_min_token_length(self):
        analyzer = Analyzer(min_token_length=3)
        assert list(analyzer.tokens("a bb ccc dddd")) == ["ccc", "dddd"]

    def test_stopwords_removed_when_enabled(self):
        analyzer = Analyzer(stopwords=DEFAULT_STOPWORDS)
        assert list(analyzer.tokens("the pool and the spa")) == ["pool", "spa"]

    def test_empty_text(self):
        assert list(DEFAULT_ANALYZER.tokens("")) == []

    def test_unicode_words(self):
        assert list(DEFAULT_ANALYZER.tokens("café Zürich")) == ["café", "zürich"]


class TestDerivedViews:
    def test_terms_deduplicates(self):
        assert DEFAULT_ANALYZER.terms("pool pool spa") == {"pool", "spa"}

    def test_term_frequencies(self):
        freq = DEFAULT_ANALYZER.term_frequencies("pool spa pool")
        assert freq == {"pool": 2, "spa": 1}

    def test_document_length_counts_tokens(self):
        assert DEFAULT_ANALYZER.document_length("pool spa pool") == 3


class TestQueryTerms:
    def test_multiword_keywords_split(self):
        terms = DEFAULT_ANALYZER.query_terms(["wireless internet", "pool"])
        assert terms == ["wireless", "internet", "pool"]

    def test_duplicates_removed_order_preserved(self):
        terms = DEFAULT_ANALYZER.query_terms(["pool", "POOL", "spa"])
        assert terms == ["pool", "spa"]

    def test_empty_keywords(self):
        assert DEFAULT_ANALYZER.query_terms([]) == []


class TestContainsAll:
    def test_paper_semantics_internet_matches_wireless_internet(self):
        """"internet" must match H2's "wireless Internet" (Example 2)."""
        assert DEFAULT_ANALYZER.contains_all(
            "wireless Internet, pool, golf course", ["internet", "pool"]
        )

    def test_missing_keyword_fails(self):
        assert not DEFAULT_ANALYZER.contains_all(
            "sauna, pool, conference rooms", ["internet", "pool"]
        )

    def test_empty_keyword_list_matches_everything(self):
        assert DEFAULT_ANALYZER.contains_all("anything", [])

    def test_substring_is_not_a_match(self):
        """Term-level semantics: "pool" does not match "whirlpool"."""
        assert not DEFAULT_ANALYZER.contains_all("whirlpool bath", ["pool"])
