"""Cross-algorithm tests for the uniform index wrappers."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    IIOIndex,
    IR2Index,
    MIR2Index,
    RTreeIndex,
    SpatialKeywordQuery,
    brute_force_top_k,
    make_index,
)
from repro.errors import IndexError_, QueryError


def all_indexes(corpus):
    return [
        RTreeIndex(corpus),
        IIOIndex(corpus),
        IR2Index(corpus, 8),
        MIR2Index(corpus, 8),
    ]


def random_queries(corpus, objects, count, num_keywords, k, seed=0):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        obj = rng.choice(objects)
        terms = sorted(corpus.analyzer.terms(obj.text))
        keywords = rng.sample(terms, min(num_keywords, len(terms)))
        out.append(
            SpatialKeywordQuery.of(
                (rng.uniform(-90, 90), rng.uniform(-180, 180)), keywords, k
            )
        )
    return out


class TestAgreement:
    def test_all_algorithms_agree_with_oracle(self, small_corpus, small_objects):
        indexes = all_indexes(small_corpus)
        for index in indexes:
            index.build()
        for query in random_queries(small_corpus, small_objects, 10, 2, 5):
            expected = [r.oid for r in brute_force_top_k(small_objects, small_corpus.analyzer, query)]
            for index in indexes:
                assert index.execute(query).oids == expected, index.label

    def test_insert_built_indexes_agree_too(self, small_corpus, small_objects):
        index = IR2Index(small_corpus, 8)
        index.build(bulk=False)
        for query in random_queries(small_corpus, small_objects, 5, 2, 5, seed=1):
            expected = [r.oid for r in brute_force_top_k(small_objects, small_corpus.analyzer, query)]
            assert index.execute(query).oids == expected


class TestLifecycle:
    def test_query_before_build_rejected(self, small_corpus):
        index = IR2Index(small_corpus, 8)
        with pytest.raises(IndexError_):
            index.execute(SpatialKeywordQuery.of((0, 0), ["x"], 1))

    def test_insert_before_build_rejected(self, small_corpus, small_objects):
        index = IR2Index(small_corpus, 8)
        pointer = next(iter(small_corpus.iter_items()))[0]
        with pytest.raises(IndexError_):
            index.insert_object(pointer, small_objects[0])

    def test_live_insert_visible(self, small_corpus, small_objects):
        from repro.model import SpatialObject

        for index in all_indexes(small_corpus):
            index.build()
            new = SpatialObject(9_999, (12.0, 34.0), "veryuniquekeyword pool")
            pointer = small_corpus.add(new)
            index.insert_object(pointer, new)
            result = index.execute(
                SpatialKeywordQuery.of((12.0, 34.0), ["veryuniquekeyword"], 1)
            )
            assert result.oids == [9_999], index.label
            assert index.delete_object(pointer, new) is True
            result = index.execute(
                SpatialKeywordQuery.of((12.0, 34.0), ["veryuniquekeyword"], 1)
            )
            assert result.oids == [], index.label
            small_corpus.store.delete(9_999)
            small_corpus.vocabulary.remove_document(
                small_corpus.analyzer.terms(new.text)
            )


class TestExecutionMetrics:
    def test_io_delta_isolated_per_query(self, small_corpus, small_objects):
        index = IR2Index(small_corpus, 8)
        index.build()
        query = random_queries(small_corpus, small_objects, 1, 2, 5, seed=2)[0]
        first = index.execute(query)
        second = index.execute(query)
        # Same query, cold metrics both times (no hidden accumulation).
        assert first.io.total_reads == second.io.total_reads
        assert first.objects_inspected == second.objects_inspected

    def test_nodes_visited_counted(self, small_corpus, small_objects):
        index = IR2Index(small_corpus, 8)
        index.build()
        query = random_queries(small_corpus, small_objects, 1, 1, 3, seed=3)[0]
        execution = index.execute(query)
        assert execution.nodes_visited >= 1
        assert execution.algorithm == "IR2"

    def test_size_mb_positive_after_build(self, small_corpus):
        for index in all_indexes(small_corpus):
            index.build()
            assert index.size_mb > 0, index.label

    def test_reset_io(self, small_corpus, small_objects):
        index = IR2Index(small_corpus, 8)
        index.build()
        index.execute(random_queries(small_corpus, small_objects, 1, 1, 1)[0])
        index.reset_io()
        assert index.device.stats.total_accesses == 0
        assert small_corpus.device.stats.total_accesses == 0


class TestFactory:
    def test_make_index_kinds(self, small_corpus):
        assert make_index("rtree", small_corpus).label == "RTREE"
        assert make_index("IIO", small_corpus).label == "IIO"
        assert make_index("ir2", small_corpus, signature_bytes=4).label == "IR2"
        assert make_index("mir2", small_corpus, signature_bytes=4).label == "MIR2"

    def test_make_index_unknown(self, small_corpus):
        with pytest.raises(QueryError):
            make_index("btree", small_corpus)
