"""Hierarchical tracing: span trees, event attribution, Chrome export.

The load-bearing suites are the cross-check invariants (the PR's
acceptance oracle): for every index kind and shard count, the instant
events recorded on a query's span tree must reconcile *exactly* with the
execution's independently-collected counters — object-verification
events against ``SearchCounters.false_positives``, block-read events
against the ``IOStats`` random/sequential split — and every Chrome
trace-event export must pass schema and strict-nesting validation.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.core.engine import SpatialKeywordEngine
from repro.core.query import SpatialKeywordQuery
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.obs import trace as qtrace
from repro.obs.trace import (
    EVT_BLOCK_READ,
    EVT_NODE_READ,
    EVT_OBJECT_VERIFY,
    PATTERN_SEQUENTIAL,
    QueryTracer,
    Trace,
    chrome_trace_events,
    dump_chrome_trace,
    trace_query,
    validate_chrome_events,
)
from repro.obs.tracereport import render_trace, summarize_events
from repro.serve import QueryService
from repro.serve.tracing import TraceLog, TraceSpan
from repro.shard import ShardedEngine

KINDS = ("ir2", "mir2", "rtree", "iio", "sig")
SHARD_COUNTS = (1, 2, 5)


def corpus_objects(n_objects=120, seed=23):
    config = DatasetConfig(
        name=f"trace-{n_objects}-{seed}",
        n_objects=n_objects,
        vocabulary_size=200,
        avg_unique_words=8,
        clusters=4,
        seed=seed,
    )
    return SpatialTextDatasetGenerator(config).generate()


def build_engine(objects, kind, n_shards):
    if n_shards == 1:
        engine = SpatialKeywordEngine(index=kind, signature_bytes=4)
    else:
        engine = ShardedEngine(n_shards=n_shards, index=kind, signature_bytes=4)
    for obj in objects:
        engine.add(obj)
    engine.build()
    return engine


def pick_query(objects, k=8):
    # Keywords taken from a real object so the query selects something.
    words = objects[13].text.split()
    return SpatialKeywordQuery.of(objects[13].point, words[:2], k)


def block_read_counts(trace):
    random = sequential = node_blocks = 0
    for _, event in trace.iter_events(EVT_BLOCK_READ):
        if event.attrs["pattern"] == PATTERN_SEQUENTIAL:
            sequential += 1
        else:
            random += 1
        if event.attrs["category"] == "node":
            node_blocks += 1
    return random, sequential, node_blocks


# ---------------------------------------------------------------------------
# Span tree / context propagation core


class TestSpanTree:
    def test_trace_query_builds_root(self):
        with trace_query("query", k=3) as trace:
            assert qtrace.current_span() is trace.root
            with qtrace.start_span("child", category="phase") as child:
                assert child is not None
                assert qtrace.current_span() is child
                qtrace.add_event("ping", value=1)
        assert qtrace.current_span() is None
        root = trace.root
        assert root.name == "query"
        assert root.attrs["k"] == 3
        assert root.end is not None
        (child,) = trace.children_of(root)
        assert child.parent_id == root.span_id
        assert child.events[0].name == "ping"
        assert child.events[0].attrs == {"value": 1}

    def test_untraced_thread_is_noop(self):
        assert qtrace.current_span() is None
        with qtrace.start_span("orphan") as span:
            assert span is None
        qtrace.add_event("nothing")  # must not raise
        with qtrace.activate(None):
            assert qtrace.current_span() is None

    def test_activate_propagates_across_threads(self):
        with trace_query("query") as trace:
            root = trace.root
            seen = {}

            def worker():
                assert qtrace.current_span() is None
                span = trace.new_span("shard-0", category="shard", parent=root)
                with qtrace.activate(span):
                    qtrace.add_event("block-read", block=1)
                    seen["current"] = qtrace.current_span()
                span.finish()

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        shard = trace.find("shard-0")[0]
        assert seen["current"] is shard
        assert shard.parent_id == trace.root.span_id
        assert shard.events[0].name == "block-read"

    def test_span_ids_unique_under_concurrency(self):
        trace = Trace()
        root = trace.new_span("query")
        spans = []

        def spawn():
            for _ in range(50):
                spans.append(trace.new_span("s", parent=root))

        threads = [threading.Thread(target=spawn) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = [span.span_id for span in spans]
        assert len(set(ids)) == len(ids)


# ---------------------------------------------------------------------------
# Sampling / retention policy


class TestQueryTracer:
    def test_every_nth_sampling(self):
        tracer = QueryTracer(sample_every=3)
        decisions = [tracer.begin() is not None for _ in range(9)]
        assert decisions == [True, False, False] * 3
        assert tracer.seen == 9

    def test_slow_threshold_traces_everything_retains_selectively(self):
        tracer = QueryTracer(sample_every=0, slow_query_ms=50.0)
        fast = tracer.begin()
        slow = tracer.begin()
        assert fast is not None and slow is not None  # both traced
        assert not tracer.commit(fast, total_ms=10.0)
        assert tracer.commit(slow, total_ms=80.0)
        assert [t.trace_id for t in tracer.traces()] == [slow.trace_id]
        assert slow.slow

    def test_sampling_off_without_slow_threshold(self):
        tracer = QueryTracer(sample_every=0, slow_query_ms=None)
        assert tracer.begin() is None

    def test_eviction_prefers_non_slow(self):
        tracer = QueryTracer(sample_every=1, slow_query_ms=50.0, capacity=2)
        slow = tracer.begin()
        tracer.commit(slow, total_ms=99.0)
        for _ in range(3):
            fast = tracer.begin()
            tracer.commit(fast, total_ms=1.0)
        kept = tracer.traces()
        assert len(kept) == 2
        assert kept[0].trace_id == slow.trace_id  # slow pinned
        assert tracer.dropped == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            QueryTracer(sample_every=-1)
        with pytest.raises(ValueError):
            QueryTracer(capacity=0)
        with pytest.raises(ValueError):
            QueryTracer(slow_query_ms=-1.0)


# ---------------------------------------------------------------------------
# The cross-check invariants (satellite: false-positive / IOStats attribution)


class TestEventAttributionInvariants:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_events_reconcile_with_counters(self, kind, n_shards):
        objects = corpus_objects()
        engine = build_engine(objects, kind, n_shards)
        query = pick_query(objects)
        with trace_query("query") as trace:
            execution = engine.search(query)

        verifies = [e for _, e in trace.iter_events(EVT_OBJECT_VERIFY)]
        false_pos = sum(1 for e in verifies if e.attrs["false_positive"])
        assert len(verifies) == execution.objects_inspected
        assert false_pos == execution.false_positive_candidates

        random, sequential, node_blocks = block_read_counts(trace)
        assert random == execution.io.random_reads
        assert sequential == execution.io.sequential_reads
        assert node_blocks == execution.io.category_reads("node")
        assert node_blocks == execution.nodes_visited

        loads = sum(
            e.attrs["count"]
            for _, e in trace.iter_events(qtrace.EVT_OBJECT_LOAD)
        )
        assert loads == execution.io.objects_loaded

    @pytest.mark.parametrize("kind", ("ir2", "mir2"))
    @pytest.mark.parametrize("n_shards", (1, 2))
    def test_ranked_queries_reconcile(self, kind, n_shards):
        objects = corpus_objects(seed=31)
        engine = build_engine(objects, kind, n_shards)
        words = objects[7].text.split()
        with trace_query("query") as trace:
            execution = engine.query_ranked(objects[7].point, words[:2], k=5)

        verifies = [e for _, e in trace.iter_events(EVT_OBJECT_VERIFY)]
        false_pos = sum(1 for e in verifies if e.attrs["false_positive"])
        assert len(verifies) == execution.objects_inspected
        assert false_pos == execution.false_positive_candidates
        random, sequential, _ = block_read_counts(trace)
        assert random == execution.io.random_reads
        assert sequential == execution.io.sequential_reads

    def test_signature_false_positives_are_traced(self):
        # signature_bytes=4 over a 200-word vocabulary saturates the
        # signatures, so a selective query must see false positives —
        # and every one of them must carry a traced verification event.
        objects = corpus_objects(n_objects=200, seed=5)
        engine = build_engine(objects, "ir2", 1)
        query = pick_query(objects, k=6)
        with trace_query("query") as trace:
            execution = engine.search(query)
        assert execution.false_positive_candidates > 0
        false_pos = sum(
            1
            for _, e in trace.iter_events(EVT_OBJECT_VERIFY)
            if e.attrs["false_positive"]
        )
        assert false_pos == execution.false_positive_candidates

    def test_node_reads_carry_tree_levels(self):
        objects = corpus_objects()
        engine = build_engine(objects, "ir2", 1)
        with trace_query("query") as trace:
            engine.search(pick_query(objects))
        node_reads = [e for _, e in trace.iter_events(EVT_NODE_READ)]
        assert node_reads, "tree traversal must record node reads"
        levels = {e.attrs["level"] for e in node_reads}
        assert 0 in levels  # at least one leaf was opened
        summary = summarize_events(trace.spans)
        assert sum(b["nodes"] for b in summary["levels"].values()) == len(
            node_reads
        )

    def test_untraced_execution_records_no_events(self):
        objects = corpus_objects()
        engine = build_engine(objects, "ir2", 1)
        execution = engine.search(pick_query(objects))
        assert execution.results is not None
        assert qtrace.current_span() is None


# ---------------------------------------------------------------------------
# Chrome trace-event export (satellite: schema + nesting validation)


class TestChromeExport:
    def _traced_service_run(self, tmp_path, n_shards=2, workers=3):
        objects = corpus_objects(seed=17)
        engine = build_engine(objects, "ir2", n_shards)
        tracer = QueryTracer(sample_every=1)
        queries = [pick_query(objects, k=4) for _ in range(6)]
        queries += [
            SpatialKeywordQuery.of(obj.point, obj.text.split()[:1], 4)
            for obj in objects[:6]
        ]
        with QueryService(
            engine, workers=workers, cache=False, tracer=tracer
        ) as service:
            service.run_batch(queries)
            path = os.fspath(tmp_path / "chrome.json")
            service.export_chrome_trace(path)
        return tracer, path

    def test_export_passes_schema_and_nesting_validation(self, tmp_path):
        tracer, path = self._traced_service_run(tmp_path)
        events = tracer.chrome_events()
        validate_chrome_events(events)  # must not raise
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        validate_chrome_events(payload["traceEvents"])
        assert payload["otherData"]["queries_seen"] == 12
        assert payload["otherData"]["traces_retained"] == len(tracer.traces())

    def test_required_fields_present_on_every_event(self, tmp_path):
        tracer, _ = self._traced_service_run(tmp_path, n_shards=1, workers=2)
        for event in tracer.chrome_events():
            for field in ("name", "ph", "ts", "pid", "tid"):
                assert field in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
            else:
                assert event["ph"] == "i"
                assert event["s"] == "t"

    def test_children_nest_inside_parents(self):
        with trace_query("query") as trace:
            with qtrace.start_span("child"):
                with qtrace.start_span("grandchild"):
                    time.sleep(0.001)
        events = chrome_trace_events([trace])
        validate_chrome_events(events)
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        for name in ("child", "grandchild"):
            child, parent = by_name[name], by_name["query"]
            assert child["ts"] >= parent["ts"] - 1e-6
            assert (
                child["ts"] + child["dur"]
                <= parent["ts"] + parent["dur"] + 1e-6
            )

    def test_validator_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing 'tid'"):
            validate_chrome_events(
                [{"name": "x", "ph": "X", "ts": 0.0, "pid": 1, "dur": 1.0}]
            )
        with pytest.raises(ValueError, match="needs dur"):
            validate_chrome_events(
                [{"name": "x", "ph": "X", "ts": 0.0, "pid": 1, "tid": 1}]
            )
        with pytest.raises(ValueError, match="missing 's'"):
            validate_chrome_events(
                [{"name": "x", "ph": "i", "ts": 0.0, "pid": 1, "tid": 1}]
            )
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_chrome_events(
                [{"name": "x", "ph": "B", "ts": 0.0, "pid": 1, "tid": 1}]
            )
        with pytest.raises(ValueError):
            validate_chrome_events([])

    def test_validator_rejects_partial_overlap(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5.0, "dur": 10.0, "pid": 1, "tid": 1},
        ]
        with pytest.raises(ValueError, match="partially overlaps"):
            validate_chrome_events(events)
        # The same intervals on different lanes are fine.
        events[1]["tid"] = 2
        validate_chrome_events(events)

    def test_validator_rejects_child_escaping_parent(self):
        events = [
            {
                "name": "parent", "ph": "X", "ts": 0.0, "dur": 10.0,
                "pid": 1, "tid": 1,
                "args": {"trace_id": "t", "span_id": 1, "parent_id": None},
            },
            {
                "name": "child", "ph": "X", "ts": 8.0, "dur": 10.0,
                "pid": 1, "tid": 2,
                "args": {"trace_id": "t", "span_id": 2, "parent_id": 1},
            },
        ]
        with pytest.raises(ValueError, match="escapes"):
            validate_chrome_events(events)
        with pytest.raises(ValueError, match="missing parent"):
            validate_chrome_events(
                [dict(events[1], args={"trace_id": "t", "span_id": 2,
                                       "parent_id": 9})]
            )

    def test_dump_is_atomic(self, tmp_path):
        with trace_query("query") as trace:
            pass
        path = os.fspath(tmp_path / "out.json")
        dump_chrome_trace(path, [trace])
        leftovers = [n for n in os.listdir(tmp_path) if ".tmp-" in n]
        assert leftovers == []
        with open(path, encoding="utf-8") as fh:
            validate_chrome_events(json.load(fh)["traceEvents"])


# ---------------------------------------------------------------------------
# Service integration: trace IDs, slow-log linkage, flat-span view


class TestServiceTracing:
    def test_trace_id_links_flat_span_and_slow_log(self):
        objects = corpus_objects(seed=29)
        engine = build_engine(objects, "ir2", 2)
        tracer = QueryTracer(sample_every=1)
        # Threshold 0: every query is "slow", so every slow-log entry
        # must link to a retained span tree.
        with QueryService(
            engine, workers=2, cache=False, slow_query_ms=0.0, tracer=tracer
        ) as service:
            executions = service.run_batch(
                [pick_query(objects, k=4) for _ in range(4)]
            )
            slow_rows = [span.as_dict() for span in service.slow_queries()]
        retained = {trace.trace_id for trace in tracer.traces()}
        for execution in executions:
            assert execution.trace.trace_id in retained
            retained_trace = tracer.get(execution.trace.trace_id)
            assert retained_trace is not None and retained_trace.slow
        assert slow_rows, "slow log must have admitted the queries"
        for row in slow_rows:
            assert row["trace_id"] in retained

    def test_unsampled_queries_have_no_trace_id(self):
        objects = corpus_objects(seed=29)
        engine = build_engine(objects, "ir2", 1)
        tracer = QueryTracer(sample_every=100, slow_query_ms=None)
        with QueryService(
            engine, workers=1, cache=False,
            slow_query_ms=10_000.0, tracer=tracer,
        ) as service:
            first = service.search(pick_query(objects))
            second = service.search(pick_query(objects))
        assert first.trace.trace_id is not None  # query 0 sampled
        assert second.trace.trace_id is None
        assert len(tracer.traces()) == 1

    def test_tracer_inherits_service_slow_threshold(self):
        objects = corpus_objects(seed=29)
        engine = build_engine(objects, "ir2", 1)
        tracer = QueryTracer(sample_every=0)  # no threshold of its own
        with QueryService(
            engine, workers=1, cache=False, slow_query_ms=0.0, tracer=tracer
        ) as service:
            execution = service.search(pick_query(objects))
        assert tracer.slow_query_ms == 0.0
        assert execution.trace.trace_id is not None

    def test_shard_spans_cover_fanout(self):
        objects = corpus_objects(seed=41)
        engine = build_engine(objects, "ir2", 3)
        tracer = QueryTracer(sample_every=1)
        with QueryService(
            engine, workers=1, cache=False, tracer=tracer
        ) as service:
            execution = service.search(pick_query(objects))
        trace = tracer.get(execution.trace.trace_id)
        shard_spans = [s for s in trace.spans if s.category == "shard"]
        assert len(shard_spans) == 3
        assert {s.attrs["shard"] for s in shard_spans} == {0, 1, 2}
        pruned = sum(1 for s in shard_spans if s.attrs.get("pruned"))
        searched = [r for r in execution.shards if not r["pruned"]]
        assert pruned == 3 - len(searched)
        for span in shard_spans:
            assert span.parent_id == trace.root.span_id
        report = render_trace(trace)
        assert "shard-0" in report and "totals:" in report

    def test_service_without_tracer_unchanged(self):
        objects = corpus_objects(seed=29)
        engine = build_engine(objects, "ir2", 1)
        with QueryService(engine, workers=1) as service:
            execution = service.search(pick_query(objects))
            assert execution.trace.trace_id is None
            assert service.traces() == []
            with pytest.raises(Exception):
                service.export_chrome_trace("/tmp/never-written.json")


# ---------------------------------------------------------------------------
# Flat TraceSpan semantics (satellites: search_ms fix, atomic dump)


class TestFlatSpanSatellites:
    def _span(self):
        return TraceSpan(
            query_id=1,
            submitted_at=1.0,
            started_at=2.0,
            lock_acquired_at=3.0,
            search_done_at=7.0,
            finished_at=8.0,
        )

    def test_search_ms_excludes_lock_wait_and_merge(self):
        span = self._span()
        assert span.search_ms == pytest.approx(4000.0)  # lock→search_done
        assert span.work_ms == pytest.approx(6000.0)  # started→finished
        assert span.lock_wait_ms == pytest.approx(1000.0)
        assert span.merge_ms == pytest.approx(1000.0)
        assert span.engine_ms == pytest.approx(span.search_ms)
        assert span.total_ms == pytest.approx(7000.0)

    def test_search_ms_zero_without_engine_timestamps(self):
        span = TraceSpan(query_id=1, started_at=1.0, finished_at=2.0)
        assert span.search_ms == 0.0
        assert span.work_ms == pytest.approx(1000.0)

    def test_as_dict_keeps_flat_keys_and_adds_new_ones(self):
        payload = self._span().as_dict()
        for key in (
            "query_id", "algorithm", "keywords", "k", "cache",
            "queue_wait_ms", "lock_wait_ms", "engine_ms", "merge_ms",
            "search_ms", "total_ms", "random_reads", "sequential_reads",
            "objects_loaded", "num_results", "retries", "worker", "error",
        ):
            assert key in payload
        assert payload["work_ms"] == pytest.approx(6000.0)
        assert payload["trace_id"] is None

    def test_emit_phases_synthesizes_service_spans(self):
        span = self._span()
        trace = Trace()
        trace.new_span("query", start=span.started_at)
        trace.root.finish(span.finished_at)
        span.emit_phases(trace)
        names = [s.name for s in trace.spans]
        assert names == ["query", "lock-wait", "finalize"]
        lock_wait = trace.find("lock-wait")[0]
        assert lock_wait.start == 2.0 and lock_wait.end == 3.0
        finalize = trace.find("finalize")[0]
        assert finalize.start == 7.0 and finalize.end == 8.0
        validate_chrome_events(chrome_trace_events([trace]))

    def test_dump_json_atomic_and_reports_dropped(self, tmp_path):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.append(TraceSpan(query_id=i))
        path = os.fspath(tmp_path / "trace.json")
        log.dump_json(path, extra={"service": {"queries": 5}})
        leftovers = [n for n in os.listdir(tmp_path) if ".tmp-" in n]
        assert leftovers == []
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["dropped"] == 3
        assert len(payload["spans"]) == 2
        assert payload["service"] == {"queries": 5}
