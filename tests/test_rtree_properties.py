"""Hypothesis property tests for R-Tree structural invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import Rect, RTree
from repro.spatial.nearest import k_nearest
from repro.storage import InMemoryBlockDevice, PageStore

finite = st.floats(-1e4, 1e4, allow_nan=False)
points = st.tuples(finite, finite)


def _fresh_tree(capacity=4) -> RTree:
    return RTree(PageStore(InMemoryBlockDevice()), capacity=capacity)


@given(point_list=st.lists(points, max_size=120))
@settings(max_examples=50, deadline=None)
def test_property_insert_preserves_invariants(point_list):
    """After any insertion sequence the tree validates and holds all ids."""
    tree = _fresh_tree()
    for i, point in enumerate(point_list):
        tree.insert(i, Rect.from_point(point))
    tree.validate()
    refs = sorted(e.child_ref for e in tree.iter_leaf_entries())
    assert refs == list(range(len(point_list)))


@given(
    point_list=st.lists(points, min_size=1, max_size=80),
    delete_mask=st.lists(st.booleans(), min_size=1, max_size=80),
)
@settings(max_examples=50, deadline=None)
def test_property_delete_preserves_invariants(point_list, delete_mask):
    """Deleting any subset leaves a valid tree containing the complement."""
    tree = _fresh_tree()
    for i, point in enumerate(point_list):
        tree.insert(i, Rect.from_point(point))
    survivors = set(range(len(point_list)))
    for i, (point, drop) in enumerate(zip(point_list, delete_mask)):
        if drop:
            assert tree.delete(i, Rect.from_point(point)) is True
            survivors.discard(i)
    tree.validate()
    refs = {e.child_ref for e in tree.iter_leaf_entries()}
    assert refs == survivors


@given(
    point_list=st.lists(points, min_size=1, max_size=80),
    window=st.tuples(points, points),
)
@settings(max_examples=50, deadline=None)
def test_property_range_query_exact(point_list, window):
    """Range search returns exactly the points inside the window."""
    (x1, y1), (x2, y2) = window
    rect = Rect((min(x1, x2), min(y1, y2)), (max(x1, x2), max(y1, y2)))
    tree = _fresh_tree()
    for i, point in enumerate(point_list):
        tree.insert(i, Rect.from_point(point))
    got = sorted(e.child_ref for e in tree.search(rect))
    want = sorted(i for i, p in enumerate(point_list) if rect.contains_point(p))
    assert got == want


@given(
    point_list=st.lists(points, min_size=1, max_size=60, unique=True),
    query=points,
    k=st.integers(1, 10),
)
@settings(max_examples=50, deadline=None)
def test_property_knn_matches_brute_force(point_list, query, k):
    """Branch-and-bound k-NN distances equal the brute-force k smallest."""
    tree = _fresh_tree()
    for i, point in enumerate(point_list):
        tree.insert(i, Rect.from_point(point))
    got = k_nearest(tree, query, k)
    import math

    brute = sorted(
        math.dist(p, query) for p in point_list
    )[: min(k, len(point_list))]
    assert len(got) == len(brute)
    for (_, got_distance), want_distance in zip(got, brute):
        assert got_distance == pytest.approx(want_distance, abs=1e-6)


import pytest  # noqa: E402  (used inside the property above)
