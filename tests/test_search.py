"""Unit and cross-check tests for distance-first search and the R-Tree
baseline (paper Sections V.A and V.B)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core import (
    BulkItem,
    Corpus,
    IR2Tree,
    SpatialKeywordQuery,
    brute_force_top_k,
    bulk_load,
    ir2_top_k,
    ir2_top_k_iter,
    rtree_top_k,
)
from repro.spatial import Rect, RTree
from repro.storage import InMemoryBlockDevice, PageStore
from repro.text import HashSignatureFactory


@pytest.fixture
def setup(small_corpus):
    pages = PageStore(InMemoryBlockDevice())
    tree = IR2Tree(pages, HashSignatureFactory(8), capacity=8)
    items = [
        BulkItem(ptr, Rect.from_point(obj.point), small_corpus.analyzer.terms(obj.text))
        for ptr, obj in small_corpus.iter_items()
    ]
    bulk_load(tree, items)
    return small_corpus, tree


def _random_queries(corpus, objects, count, num_keywords, k, seed=0):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        obj = rng.choice(objects)
        terms = sorted(corpus.analyzer.terms(obj.text))
        keywords = rng.sample(terms, min(num_keywords, len(terms)))
        point = (rng.uniform(-90, 90), rng.uniform(-180, 180))
        queries.append(SpatialKeywordQuery.of(point, keywords, k))
    return queries


class TestIR2TopK:
    def test_matches_brute_force(self, setup, small_objects):
        corpus, tree = setup
        for query in _random_queries(corpus, small_objects, 15, 2, 5):
            got = ir2_top_k(tree, corpus.store, corpus.analyzer, query)
            want = brute_force_top_k(small_objects, corpus.analyzer, query)
            assert [r.oid for r in got.results] == [r.oid for r in want]

    def test_results_sorted_by_distance(self, setup, small_objects):
        corpus, tree = setup
        query = _random_queries(corpus, small_objects, 1, 1, 20, seed=3)[0]
        outcome = ir2_top_k(tree, corpus.store, corpus.analyzer, query)
        distances = [r.distance for r in outcome.results]
        assert distances == sorted(distances)

    def test_every_result_contains_all_keywords(self, setup, small_objects):
        corpus, tree = setup
        for query in _random_queries(corpus, small_objects, 10, 2, 10, seed=4):
            outcome = ir2_top_k(tree, corpus.store, corpus.analyzer, query)
            for result in outcome.results:
                assert corpus.analyzer.contains_all(
                    result.obj.text, query.keywords
                )

    def test_no_matches_returns_empty(self, setup):
        corpus, tree = setup
        query = SpatialKeywordQuery.of((0, 0), ["nonexistentword"], 5)
        outcome = ir2_top_k(tree, corpus.store, corpus.analyzer, query)
        assert outcome.results == []

    def test_k_larger_than_matches(self, setup, small_objects):
        corpus, tree = setup
        query = _random_queries(corpus, small_objects, 1, 3, 10_000, seed=5)[0]
        outcome = ir2_top_k(tree, corpus.store, corpus.analyzer, query)
        want = brute_force_top_k(small_objects, corpus.analyzer, query)
        assert len(outcome.results) == len(want)

    def test_false_positive_counter(self, setup, small_objects):
        corpus, tree = setup
        total_fp = 0
        for query in _random_queries(corpus, small_objects, 10, 2, 5, seed=6):
            outcome = ir2_top_k(tree, corpus.store, corpus.analyzer, query)
            counters = outcome.counters
            # Every inspected object is either a returned result, a
            # signature false positive, or a verified match at the k-th
            # distance that the deterministic (distance, oid) tie cut
            # dropped — never anything unaccounted for.
            accounted = len(outcome.results) + counters.false_positives
            assert counters.objects_inspected >= accounted
            overdrain = counters.objects_inspected - accounted
            kth = outcome.results[-1].distance if outcome.results else None
            if overdrain:
                # Over-inspection can only come from draining the tie
                # group at the k-th distance plus the single match past
                # it that proves the group ended; the brute-force oracle
                # bounds the group size.
                unbounded = SpatialKeywordQuery.of(
                    query.point, query.keywords, 10_000
                )
                ties_at_kth = sum(
                    r.distance == kth
                    for r in brute_force_top_k(
                        small_objects, corpus.analyzer, unbounded
                    )
                )
                assert overdrain <= ties_at_kth
            total_fp += counters.false_positives
        assert total_fp >= 0  # may be zero with lucky hashing

    def test_incremental_iterator_is_lazy(self, setup, small_objects):
        corpus, tree = setup
        query = _random_queries(corpus, small_objects, 1, 1, 1, seed=7)[0]
        iterator = ir2_top_k_iter(tree, corpus.store, corpus.analyzer, query)
        first = next(iterator)
        assert corpus.analyzer.contains_all(first.obj.text, query.keywords)
        # Pulling more keeps yielding farther matches.
        more = list(itertools.islice(iterator, 3))
        for earlier, later in zip([first] + more, more):
            assert earlier.distance <= later.distance + 1e-9


class TestRTreeBaseline:
    def test_matches_brute_force(self, small_corpus, small_objects):
        pages = PageStore(InMemoryBlockDevice())
        tree = RTree(pages, capacity=8)
        for ptr, obj in small_corpus.iter_items():
            tree.insert(ptr, Rect.from_point(obj.point))
        for query in _random_queries(small_corpus, small_objects, 10, 2, 5, seed=8):
            got = rtree_top_k(tree, small_corpus.store, small_corpus.analyzer, query)
            want = brute_force_top_k(small_objects, small_corpus.analyzer, query)
            assert [r.oid for r in got.results] == [r.oid for r in want]

    def test_baseline_inspects_more_objects_than_ir2(self, setup, small_objects):
        """The whole point of the paper: signature pruning loads fewer
        objects than fetch-and-filter."""
        corpus, ir2tree = setup
        pages = PageStore(InMemoryBlockDevice())
        plain = RTree(pages, capacity=8)
        for ptr, obj in corpus.iter_items():
            plain.insert(ptr, Rect.from_point(obj.point))
        baseline_total = 0
        ir2_total = 0
        for query in _random_queries(corpus, small_objects, 12, 2, 5, seed=9):
            baseline_total += rtree_top_k(
                plain, corpus.store, corpus.analyzer, query
            ).counters.objects_inspected
            ir2_total += ir2_top_k(
                ir2tree, corpus.store, corpus.analyzer, query
            ).counters.objects_inspected
        assert ir2_total < baseline_total


class TestBruteForceOracle:
    def test_tie_break_by_oid(self, small_corpus):
        from repro.model import SpatialObject

        objects = [
            SpatialObject(5, (1.0, 0.0), "pool"),
            SpatialObject(2, (1.0, 0.0), "pool"),
        ]
        query = SpatialKeywordQuery.of((0, 0), ["pool"], 2)
        result = brute_force_top_k(objects, small_corpus.analyzer, query)
        assert [r.oid for r in result] == [2, 5]

    def test_filters_non_matching(self, small_corpus):
        from repro.model import SpatialObject

        objects = [SpatialObject(1, (0.0, 0.0), "spa only")]
        query = SpatialKeywordQuery.of((0, 0), ["pool"], 1)
        assert brute_force_top_k(objects, small_corpus.analyzer, query) == []
