"""Unit tests for the IR2-Tree (structure + signature maintenance)."""

from __future__ import annotations

import random

import pytest

from repro.core import IR2Tree
from repro.spatial import Rect
from repro.storage import InMemoryBlockDevice, PageStore
from repro.text import HashSignatureFactory, Signature
from repro.text.analyzer import DEFAULT_ANALYZER


def make_tree(signature_bytes=8, capacity=4):
    pages = PageStore(InMemoryBlockDevice())
    return IR2Tree(pages, HashSignatureFactory(signature_bytes), capacity=capacity)


def docs(n, vocab=40, words=6, seed=0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        terms = {f"w{rng.randrange(vocab)}" for _ in range(words)}
        point = (rng.uniform(0, 100), rng.uniform(0, 100))
        out.append((i, point, terms))
    return out


def signature_invariant(tree):
    """Every parent entry's signature covers its child's superimposition.

    This is the property the distance-first pruning relies on: if a query
    signature matches some object below v, it must match v's signature.
    """
    for node in tree.iter_nodes():
        if node.is_leaf:
            continue
        for entry in node.entries:
            child = tree._load_uncounted(entry.child_ref)
            child_or = Signature.from_bytes(child.or_signature())
            parent_sig = Signature.from_bytes(entry.signature)
            assert parent_sig.bits & child_or.bits == child_or.bits


class TestInsert:
    def test_leaf_signature_is_document_signature(self):
        tree = make_tree()
        tree.insert_object(0, (1.0, 1.0), {"pool", "spa"})
        entry = next(tree.iter_leaf_entries())
        expected = tree.factory.for_words({"pool", "spa"})
        assert Signature.from_bytes(entry.signature) == expected

    def test_signatures_propagate_up_after_splits(self):
        tree = make_tree()
        for oid, point, terms in docs(40):
            tree.insert_object(oid, point, terms)
        assert tree.height > 1
        tree.validate()
        signature_invariant(tree)

    def test_root_signature_covers_every_object(self):
        tree = make_tree()
        items = docs(30, seed=2)
        for oid, point, terms in items:
            tree.insert_object(oid, point, terms)
        root = tree._load_uncounted(tree.root_id)
        root_sig = Signature.from_bytes(root.or_signature())
        for _, _, terms in items:
            assert root_sig.matches(tree.factory.for_words(terms))


class TestDelete:
    def test_delete_maintains_signature_invariant(self):
        tree = make_tree()
        items = docs(60, seed=3)
        for oid, point, terms in items:
            tree.insert_object(oid, point, terms)
        rng = random.Random(5)
        for oid, point, _ in rng.sample(items, 30):
            assert tree.delete_object(oid, point) is True
        tree.validate()
        signature_invariant(tree)

    def test_delete_missing_returns_false(self):
        tree = make_tree()
        tree.insert_object(0, (1.0, 1.0), {"pool"})
        assert tree.delete_object(99, (9.0, 9.0)) is False

    def test_signatures_can_shrink_after_delete(self):
        """Removing the only object holding a rare word eventually clears
        its bits from refreshed ancestors (OR-recomputation, not sticky)."""
        tree = make_tree(signature_bytes=32, capacity=4)
        rare_terms = {"uniquerareword"}
        for oid, point, terms in docs(12, vocab=5, seed=7):
            tree.insert_object(oid, point, terms)
        tree.insert_object(100, (50.0, 50.0), rare_terms)
        rare_sig = tree.factory.for_words(rare_terms)
        root_sig = Signature.from_bytes(
            tree._load_uncounted(tree.root_id).or_signature()
        )
        assert root_sig.matches(rare_sig)
        assert tree.delete_object(100, (50.0, 50.0))
        # CondenseTree refreshed the whole path, so the rare word's bits
        # survive in ancestors only where live objects also set them.
        root_sig = Signature.from_bytes(
            tree._load_uncounted(tree.root_id).or_signature()
        )
        live_bits = 0
        for entry in tree.iter_leaf_entries():
            live_bits |= Signature.from_bytes(entry.signature).bits
        assert root_sig.bits & rare_sig.bits == live_bits & rare_sig.bits


class TestQueryHelpers:
    def test_query_signature_superimposes_keywords(self):
        tree = make_tree()
        combined = tree.query_signature(["pool", "spa"])
        assert combined.matches(tree.factory.for_word("pool"))
        assert combined.matches(tree.factory.for_word("spa"))

    def test_signature_matcher_accepts_matching_entry(self):
        tree = make_tree()
        tree.insert_object(0, (0.0, 0.0), {"pool", "spa"})
        entry = next(tree.iter_leaf_entries())
        node = tree._load_uncounted(tree.root_id)
        matcher = tree.signature_matcher(["pool"])
        assert matcher(entry, node) is True

    def test_signature_matcher_never_false_negative(self):
        tree = make_tree()
        items = docs(25, seed=9)
        for oid, point, terms in items:
            tree.insert_object(oid, point, terms)
        # For each object, a query on its own terms must match all the way
        # down (checked indirectly: matcher accepts the leaf entry).
        leaf_entries = {e.child_ref: e for e in tree.iter_leaf_entries()}
        for oid, _, terms in items:
            matcher = tree.signature_matcher(sorted(terms))
            for node in tree.iter_nodes():
                if node.is_leaf and any(
                    e.child_ref == oid for e in node.entries
                ):
                    assert matcher(leaf_entries[oid], node)

    def test_matched_terms_subset_of_query(self):
        tree = make_tree()
        tree.insert_object(0, (0.0, 0.0), {"pool"})
        entry = next(tree.iter_leaf_entries())
        node = tree._load_uncounted(tree.root_id)
        matched = tree.matched_terms(entry, node, ["pool", "zebra"])
        assert "pool" in matched
        assert set(matched) <= {"pool", "zebra"}


class TestStorageFootprint:
    def test_node_spans_multiple_blocks_with_long_signatures(self):
        pages = PageStore(InMemoryBlockDevice())
        tree = IR2Tree(pages, HashSignatureFactory(189))  # paper's Hotels config
        assert tree.capacity == 113
        assert tree.blocks_per_node_at(0) > 2

    def test_multiblock_node_read_counts_extent(self):
        pages = PageStore(InMemoryBlockDevice())
        tree = IR2Tree(pages, HashSignatureFactory(189))
        for oid, point, terms in docs(150, seed=11, words=12):
            tree.insert_object(oid, point, terms)
        # The root holds only 2 entries (1 block: extents grow as needed,
        # "additional disk block(s) ... when needed"); a ~56-entry leaf
        # with 189-byte signatures spans several blocks.
        root = tree._load_uncounted(tree.root_id)
        leaf_id = root.entries[0].child_ref
        pages.device.stats.reset()
        tree.load_node(leaf_id)
        stats = pages.device.stats
        assert stats.random_reads == 1
        assert stats.sequential_reads >= 1
