"""Tests for engine save/load persistence."""

from __future__ import annotations

import random

import pytest

from repro import SpatialKeywordEngine, SpatialObject
from repro.core import SpatialKeywordQuery, brute_force_top_k
from repro.datasets import figure1_hotels
from repro.errors import DatasetError, PersistError
from repro.persist import MANIFEST_VERSION, load_engine, save_engine


def build_engine(kind, objects):
    engine = SpatialKeywordEngine(index=kind, signature_bytes=8)
    engine.add_all(objects)
    engine.build()
    return engine


@pytest.mark.parametrize("kind", ["rtree", "iio", "ir2", "mir2", "sig"])
class TestRoundTrip:
    def test_queries_identical_after_reload(self, kind, tmp_path):
        engine = build_engine(kind, figure1_hotels())
        before = engine.query((30.5, 100.0), ["internet", "pool"], k=2)
        save_engine(engine, str(tmp_path / "saved"))
        reloaded = load_engine(str(tmp_path / "saved"))
        after = reloaded.query((30.5, 100.0), ["internet", "pool"], k=2)
        assert after.oids == before.oids == [7, 2]
        assert len(reloaded) == len(engine)

    def test_io_costs_identical_after_reload(self, kind, tmp_path):
        engine = build_engine(kind, figure1_hotels())
        engine.reset_io()
        before = engine.query((30.5, 100.0), ["pool"], k=3)
        save_engine(engine, str(tmp_path / "saved"))
        reloaded = load_engine(str(tmp_path / "saved"))
        after = reloaded.query((30.5, 100.0), ["pool"], k=3)
        assert after.io.total_reads == before.io.total_reads

    def test_maintenance_continues_after_reload(self, kind, tmp_path):
        engine = build_engine(kind, figure1_hotels())
        save_engine(engine, str(tmp_path / "saved"))
        reloaded = load_engine(str(tmp_path / "saved"))
        reloaded.add_object(99, (30.5, 100.0), "internet pool reopened")
        assert reloaded.query((30.5, 100.0), ["internet", "pool"], 1).oids == [99]
        assert reloaded.delete(99) is True
        assert reloaded.delete(5) is True
        assert reloaded.query((30.5, 100.0), ["internet", "pool"], 2).oids == [7, 2]


class TestRoundTripAtScale:
    def test_larger_corpus_agrees_with_oracle_after_reload(self, tmp_path, small_objects):
        engine = build_engine("ir2", small_objects)
        save_engine(engine, str(tmp_path / "saved"))
        reloaded = load_engine(str(tmp_path / "saved"))
        rng = random.Random(3)
        analyzer = reloaded.corpus.analyzer
        for _ in range(8):
            anchor = rng.choice(small_objects)
            terms = sorted(analyzer.terms(anchor.text))
            keywords = rng.sample(terms, min(2, len(terms)))
            query = SpatialKeywordQuery.of(
                (rng.uniform(-90, 90), rng.uniform(-180, 180)), keywords, 5
            )
            expected = [
                r.oid for r in brute_force_top_k(small_objects, analyzer, query)
            ]
            assert reloaded.index.execute(query).oids == expected

    def test_vocabulary_restored(self, tmp_path, small_objects):
        engine = build_engine("ir2", small_objects)
        save_engine(engine, str(tmp_path / "saved"))
        reloaded = load_engine(str(tmp_path / "saved"))
        original = engine.corpus.vocabulary
        restored = reloaded.corpus.vocabulary
        assert restored.unique_words == original.unique_words
        assert restored.document_count == original.document_count
        sample = list(original.terms())[:20]
        for term in sample:
            assert restored.idf(term) == original.idf(term)

    def test_ranked_queries_after_reload(self, tmp_path, small_objects):
        engine = build_engine("ir2", small_objects)
        save_engine(engine, str(tmp_path / "saved"))
        reloaded = load_engine(str(tmp_path / "saved"))
        anchor = small_objects[0]
        terms = sorted(engine.corpus.analyzer.terms(anchor.text))[:2]
        before = engine.query_ranked(anchor.point, terms, k=5)
        after = reloaded.query_ranked(anchor.point, terms, k=5)
        assert after.oids == before.oids


class TestErrors:
    def test_save_unbuilt_rejected(self, tmp_path):
        engine = SpatialKeywordEngine()
        engine.add(SpatialObject(1, (0.0, 0.0), "pool"))
        with pytest.raises(DatasetError):
            save_engine(engine, str(tmp_path / "saved"))

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(DatasetError):
            load_engine(str(tmp_path / "nothing"))

    def test_load_bad_version(self, tmp_path):
        engine = build_engine("ir2", figure1_hotels())
        target = tmp_path / "saved"
        save_engine(engine, str(target))
        manifest = target / "manifest.json"
        import json

        data = json.loads(manifest.read_text())
        data["version"] = 999
        manifest.write_text(json.dumps(data))
        with pytest.raises(DatasetError):
            load_engine(str(target))

    def test_load_corrupt_device_image(self, tmp_path):
        engine = build_engine("ir2", figure1_hotels())
        target = tmp_path / "saved"
        save_engine(engine, str(target))
        with open(target / "index.dat", "ab") as handle:
            handle.write(b"garbage")  # no longer block aligned
        with pytest.raises(DatasetError):
            load_engine(str(target))

    def test_save_over_a_plain_file_rejected(self, tmp_path):
        engine = build_engine("ir2", figure1_hotels())
        target = tmp_path / "saved"
        target.write_text("not a directory")
        with pytest.raises(PersistError):
            save_engine(engine, str(target))


class TestDurability:
    def test_manifest_carries_digests_for_every_data_file(self, tmp_path):
        import json

        engine = build_engine("ir2", figure1_hotels())
        target = tmp_path / "saved"
        save_engine(engine, str(target))
        manifest = json.loads((target / "manifest.json").read_text())
        assert manifest["version"] == MANIFEST_VERSION
        assert set(manifest["files"]) == {"objects.dat", "index.dat"}
        for rel, meta in manifest["files"].items():
            assert meta["bytes"] == (target / rel).stat().st_size
            assert len(meta["sha256"]) == 64

    def test_legacy_manifest_without_digests_still_loads(self, tmp_path):
        import json

        engine = build_engine("ir2", figure1_hotels())
        target = tmp_path / "saved"
        save_engine(engine, str(target))
        manifest_path = target / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 2
        del manifest["files"]
        manifest_path.write_text(json.dumps(manifest))
        reloaded = load_engine(str(target))
        before = engine.query((30.5, 100.0), ["internet", "pool"], k=2)
        after = reloaded.query((30.5, 100.0), ["internet", "pool"], k=2)
        assert after.oids == before.oids

    def test_tampered_file_raises_persist_error_naming_it(self, tmp_path):
        engine = build_engine("ir2", figure1_hotels())
        target = tmp_path / "saved"
        save_engine(engine, str(target))
        path = target / "objects.dat"
        data = bytearray(path.read_bytes())
        data[0] ^= 0x01  # same size, one flipped bit
        path.write_bytes(bytes(data))
        with pytest.raises(PersistError, match="objects.dat"):
            load_engine(str(target))

    def test_resave_replaces_the_directory_wholesale(self, tmp_path):
        engine = build_engine("ir2", figure1_hotels())
        target = tmp_path / "saved"
        save_engine(engine, str(target))
        junk = target / "leftover.dat"
        junk.write_bytes(b"stale state from an older layout")
        save_engine(engine, str(target))
        assert not junk.exists()
        assert load_engine(str(target)).query(
            (30.5, 100.0), ["internet", "pool"], k=2
        ).oids == [7, 2]
        # No staging/trash siblings survive a successful save either.
        leftovers = [
            name for name in (p.name for p in tmp_path.iterdir())
            if name.startswith("saved.tmp-") or name.startswith("saved.old-")
        ]
        assert leftovers == []
