"""Tests for paper-style result table rendering."""

from __future__ import annotations

from repro.bench import SeriesTable, format_markdown, format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(
            ("k", "RTREE", "IR2"), [(1, 100.0, 5.5), (10, 2000.0, 12.25)],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "k" in lines[1] and "RTREE" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "2,000" in text  # thousands separator
        assert "12.25" in text

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert "a" in text and "b" in text

    def test_float_formatting_ranges(self):
        text = format_table(("x",), [(0.1234,), (5.5,), (1234.0,), (0.0,)])
        assert "0.1234" in text
        assert "5.50" in text
        assert "1,234" in text
        assert "\n     0" in text or " 0" in text  # zero renders compactly


class TestFormatMarkdown:
    def test_structure(self):
        text = format_markdown(("k", "IR2"), [(1, 2.0)], title="Fig")
        lines = text.splitlines()
        assert lines[0] == "### Fig"
        assert lines[2].startswith("| k | IR2 |")
        assert lines[3].startswith("|---")
        assert lines[4] == "| 1 | 2.00 |"


class TestRenderChart:
    def _table(self, values=None):
        table = SeriesTable(
            title="Fig demo", parameter="k", algorithms=["RTREE", "IR2", "IIO"]
        )
        data = values or [(1, (100.0, 2.0, 30.0)), (10, (1000.0, 8.0, 30.0))]
        for k, row in data:
            table.add(k, dict(zip(table.algorithms, row)))
        return table

    def test_contains_legend_and_axis(self):
        from repro.bench import render_chart

        text = render_chart(self._table())
        assert "legend:" in text
        assert "R=RTREE" in text
        assert "k: 1  10" in text
        assert "[log10 y-axis]" in text

    def test_duplicate_initials_disambiguated(self):
        from repro.bench import render_chart

        text = render_chart(self._table())
        assert "I=IR2" in text and "i=IIO" in text

    def test_linear_fallback_on_zero_values(self):
        from repro.bench import render_chart

        table = self._table([(1, (0.0, 2.0, 3.0))])
        text = render_chart(table)
        assert "[linear y-axis]" in text

    def test_empty_table(self):
        from repro.bench import render_chart

        table = SeriesTable(title="empty", parameter="k", algorithms=["A"])
        assert "(no data)" in render_chart(table)

    def test_extremes_plotted_top_and_bottom(self):
        from repro.bench import render_chart

        text = render_chart(self._table())
        lines = text.splitlines()
        assert "1,000" in lines[1]  # top label = max value
        assert "2" in lines[-4]  # bottom label = min value

    def test_method_on_table(self):
        assert "legend" in self._table().render_chart()


class TestSeriesTable:
    def _table(self):
        table = SeriesTable(title="Fig 9a", parameter="k", algorithms=["RTREE", "IR2"])
        table.add(1, {"RTREE": 10.0, "IR2": 2.0})
        table.add(10, {"RTREE": 100.0, "IR2": 4.0})
        return table

    def test_column_extraction(self):
        table = self._table()
        assert table.column("RTREE") == [10.0, 100.0]
        assert table.column("IR2") == [2.0, 4.0]

    def test_missing_algorithm_gives_nan(self):
        table = self._table()
        values = table.column("IIO")
        assert all(v != v for v in values)  # NaN

    def test_render_contains_everything(self):
        text = self._table().render()
        assert "Fig 9a" in text
        assert "RTREE" in text and "IR2" in text
        assert "100" in text

    def test_render_markdown(self):
        text = self._table().render_markdown()
        assert text.startswith("### Fig 9a")
        assert "| 10 |" in text
