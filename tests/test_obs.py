"""The observability layer: metrics primitives, slow log, exporters.

Covers the :mod:`repro.obs` primitives in isolation (counter/gauge/
histogram semantics, quantile interpolation, registry name binding,
snapshot merging, slow-log displacement) and the integration points:
the service's per-stage histograms and cache counters, the sharded
engine's fan-out counters, storage gauges, and the two JSON surfaces
(``QueryService.export_metrics`` and the ``repro metrics`` CLI).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.engine import SpatialKeywordEngine
from repro.core.query import SpatialKeywordQuery
from repro.obs import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    SlowQueryLog,
    export_device,
    export_engine,
    merge_snapshots,
    metric_token,
)
from repro.serve import QueryService
from repro.shard import ShardedEngine
from repro.storage.block import InMemoryBlockDevice
from repro.storage.cache import BufferPoolDevice


def search(service, point, keywords, k=10):
    """Synchronous point query through the redesigned submission API."""
    return service.search(SpatialKeywordQuery.of(point, keywords, k))


def small_objects(n=30):
    from repro.model import SpatialObject

    themes = ["cafe wifi", "cafe garden", "bar cafe", "pizza cafe"]
    return [
        SpatialObject(i, (float(i % 6), float(i // 6)), themes[i % len(themes)])
        for i in range(n)
    ]


class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_overwrites(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_concurrent_increments_are_exact(self):
        counter = Counter("c")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestHistogram:
    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_exact_stats(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 2.0, 2.0, 50.0, 500.0):
            hist.observe(v)
        assert hist.count == 5
        assert hist.sum == pytest.approx(554.5)
        d = hist.as_dict()
        assert d["min"] == 0.5
        assert d["max"] == 500.0
        assert d["overflow"] == 1
        assert [b["count"] for b in d["buckets"]] == [1, 2, 1]

    def test_single_observation_quantiles_are_exact(self):
        hist = Histogram("h")
        hist.observe(7.3)
        assert hist.quantile(0.5) == pytest.approx(7.3)
        assert hist.quantile(0.99) == pytest.approx(7.3)

    def test_quantiles_stay_in_observed_range(self):
        hist = Histogram("h", buckets=(10.0, 100.0, 1000.0))
        for v in (12.0, 14.0, 15.0, 90.0):
            hist.observe(v)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert 12.0 <= hist.quantile(q) <= 90.0

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_empty_histogram(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) == 0.0
        d = hist.as_dict()
        assert d["count"] == 0 and d["min"] == 0.0 and d["max"] == 0.0

    def test_median_of_uniform_values(self):
        hist = Histogram("h", buckets=tuple(float(b) for b in range(1, 101)))
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.quantile(0.5) == pytest.approx(50.0, abs=2.0)
        assert hist.quantile(0.95) == pytest.approx(95.0, abs=2.0)


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_name_kind_binding_enforced(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_shape_and_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h", buckets=COUNT_BUCKETS).observe(3)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 0.5}
        assert snap["histograms"]["h"]["count"] == 1
        json.dumps(snap)  # must be JSON-clean
        out = tmp_path / "m.json"
        registry.dump_json(str(out), extra={"run": "test"})
        loaded = json.loads(out.read_text())
        assert loaded["run"] == "test"
        assert loaded["metrics"]["counters"]["c"] == 2
        assert registry.names() == ["c", "g", "h"]

    def test_merge_snapshots(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, n in ((a, 2), (b, 3)):
            registry.counter("c").inc(n)
            registry.histogram("h", buckets=(1.0, 10.0)).observe(float(n))
            registry.gauge("g").set(float(n))
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["c"] == 5
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["sum"] == pytest.approx(5.0)
        assert "p50" not in merged["histograms"]["h"]
        assert merged["gauges"]["g"] == 3.0

    def test_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1)
        b.histogram("h", buckets=(1.0, 3.0)).observe(1)
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])


class FakeSpan:
    def __init__(self, total_ms):
        self.total_ms = total_ms

    def as_dict(self):
        return {"total_ms": self.total_ms}


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_ms=10.0, capacity=4)
        assert not log.offer(FakeSpan(5.0))
        assert log.offer(FakeSpan(15.0))
        assert len(log) == 1
        assert log.observed == 2

    def test_keeps_the_worst_when_full(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=3)
        for ms in (10.0, 30.0, 20.0, 5.0, 40.0):
            log.offer(FakeSpan(ms))
        kept = [span.total_ms for span in log.spans()]
        assert kept == [40.0, 30.0, 20.0]

    def test_as_dicts_slowest_first(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=8)
        for ms in (1.0, 9.0, 4.0):
            log.offer(FakeSpan(ms))
        assert [row["total_ms"] for row in log.as_dicts()] == [9.0, 4.0, 1.0]

    def test_clear(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=2)
        log.offer(FakeSpan(1.0))
        log.clear()
        assert len(log) == 0 and log.observed == 0

    def test_validates_args(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)


class TestExporters:
    def test_metric_token_sanitizes(self):
        assert metric_token("lru(ir2-index)") == "lru_ir2_index"
        assert metric_token("???") == "device"

    def test_export_buffer_pool_device(self):
        registry = MetricsRegistry()
        inner = InMemoryBlockDevice(block_size=64, name="disk")
        pool = BufferPoolDevice(inner, capacity_blocks=4)
        pool.write_block(0, b"x" * 10)
        pool.read_block(0)  # hit (write populated the cache)
        export_device(registry, pool)
        snap = registry.snapshot()["gauges"]
        assert snap["storage.lru_disk.pool.hits"] == 1.0
        assert snap["storage.lru_disk.pool.hit_rate"] == 1.0
        assert snap["storage.lru_disk.io.random_writes"] >= 1.0

    def test_export_single_engine(self):
        registry = MetricsRegistry()
        engine = SpatialKeywordEngine(index="ir2")
        engine.add_all(small_objects())
        engine.build()
        engine.query((0.0, 0.0), ["cafe"], k=3)
        export_engine(registry, engine)
        gauges = registry.snapshot()["gauges"]
        read_gauges = [n for n in gauges if n.endswith(".io.random_reads")]
        assert read_gauges, gauges.keys()
        assert any(gauges[n] > 0 for n in read_gauges)

    def test_export_sharded_engine(self):
        registry = MetricsRegistry()
        engine = ShardedEngine(n_shards=2, index="ir2")
        engine.add_all(small_objects())
        engine.build()
        engine.query((0.0, 0.0), ["cafe"], k=3)
        export_engine(registry, engine)
        gauges = registry.snapshot()["gauges"]
        assert "storage.all_shards.io.random_reads" in gauges
        assert any(n.startswith("storage.shard0.") for n in gauges)
        assert any(n.startswith("storage.shard1.") for n in gauges)
        engine.close()


class TestServiceIntegration:
    @pytest.fixture()
    def service(self):
        engine = SpatialKeywordEngine(index="ir2")
        engine.add_all(small_objects())
        engine.build()
        with QueryService(engine, workers=2, slow_query_ms=0.0) as svc:
            yield svc

    def test_per_stage_histograms_and_counters(self, service):
        for _ in range(3):
            search(service, (0.0, 0.0), ["cafe"], k=3)
        search(service, (5.0, 4.0), ["garden"], k=2)
        stats = service.stats()
        snap = stats.metrics
        assert snap["counters"]["service.queries"] == 4
        assert snap["counters"]["service.cache.miss"] == 2
        assert snap["counters"]["service.cache.hit"] == 2
        for name in (
            "service.queue_wait_ms",
            "service.lock_wait_ms",
            "service.search_ms",
            "service.merge_ms",
            "service.total_ms",
            "service.reads_per_query",
        ):
            assert snap["histograms"][name]["count"] == 4, name
        # Stage timings nest inside the total.
        total = snap["histograms"]["service.total_ms"]["sum"]
        stages = sum(
            snap["histograms"][n]["sum"]
            for n in ("service.lock_wait_ms", "service.search_ms",
                      "service.merge_ms")
        )
        assert stages <= total + 1e-6

    def test_slow_log_collects_spans(self, service):
        search(service, (0.0, 0.0), ["cafe"], k=3)
        slow = service.slow_queries()
        assert slow and slow[0].keywords == ("cafe",)

    def test_export_metrics_json(self, service, tmp_path):
        search(service, (0.0, 0.0), ["cafe"], k=3)
        out = tmp_path / "metrics.json"
        service.export_metrics(str(out))
        payload = json.loads(out.read_text())
        assert payload["service"]["queries"] == 1
        assert "service.total_ms" in payload["metrics"]["histograms"]
        assert payload["slow_queries"]

    def test_shared_registry_receives_fanout_counters(self):
        engine = ShardedEngine(n_shards=2, index="ir2")
        engine.add_all(small_objects())
        engine.build()
        registry = MetricsRegistry()
        with QueryService(engine, workers=2, metrics=registry) as service:
            assert engine.metrics is registry
            search(service, (0.0, 0.0), ["cafe"], k=3)
        counters = registry.snapshot()["counters"]
        assert counters["shard.fanout.queries"] == 1
        assert (
            counters.get("shard.fanout.searched", 0)
            + counters.get("shard.fanout.pruned", 0)
        ) == 2
        engine.close()

    def test_engine_registry_is_not_replaced(self):
        engine = ShardedEngine(n_shards=2, index="ir2")
        engine.add_all(small_objects())
        engine.build()
        own = MetricsRegistry()
        engine.metrics = own
        with QueryService(engine, workers=1) as service:
            assert engine.metrics is own
            assert service.metrics is not own
        engine.close()

    def test_retry_counter(self):
        from repro.errors import TransientDeviceError
        from repro.storage.faults import inject_engine_faults

        engine = SpatialKeywordEngine(index="ir2")
        engine.add_all(small_objects())
        engine.build()
        plan = inject_engine_faults(
            engine, fail_read_at=(0,), transient=True, max_failures=1
        )
        with QueryService(engine, workers=1, cache=False) as service:
            execution = search(service, (0.0, 0.0), ["cafe"], k=3)
        assert execution.results
        assert plan.failures_injected == 1
        stats = service.stats()
        assert stats.retries == 1
        assert stats.metrics["counters"]["service.retries"] == 1
        assert execution.trace.retries == 1


class TestMetricsCli:
    def test_metrics_subcommand(self, tmp_path, capsys):
        from repro.cli import main
        from repro.persist import save_engine

        engine = SpatialKeywordEngine(index="ir2")
        engine.add_all(small_objects())
        engine.build()
        engine_dir = tmp_path / "engine"
        save_engine(engine, str(engine_dir))
        out = tmp_path / "metrics.json"
        code = main([
            "metrics", str(engine_dir), "--queries", "8", "--workers", "2",
            "--out", str(out),
        ])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        saved = json.loads(out.read_text())
        assert printed == saved
        assert saved["probe_queries"] == 8
        assert saved["metrics"]["counters"]["service.queries"] == 8
        assert "service.total_ms" in saved["metrics"]["histograms"]

    def test_serve_metrics_flag(self, tmp_path):
        from repro.cli import main
        from repro.persist import save_engine

        engine = SpatialKeywordEngine(index="ir2")
        engine.add_all(small_objects())
        engine.build()
        engine_dir = tmp_path / "engine"
        save_engine(engine, str(engine_dir))
        out = tmp_path / "serve-metrics.json"
        code = main([
            "serve", "--engine", str(engine_dir), "--queries", "8",
            "--workers", "2", "--serve-metrics", str(out),
            "--slow-query-ms", "0",
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["service"]["queries"] == 8
        assert payload["slow_queries"]
        assert "service.search_ms" in payload["metrics"]["histograms"]
