"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_storage_family(self):
        for cls in (
            errors.BlockOutOfRangeError,
            errors.BlockSizeError,
            errors.AllocationError,
            errors.SerializationError,
            errors.PageNotFoundError,
            errors.ObjectNotFoundError,
        ):
            assert issubclass(cls, errors.StorageError)

    def test_index_family(self):
        assert issubclass(errors.TreeInvariantError, errors.IndexError_)
        assert issubclass(errors.SignatureLengthError, errors.IndexError_)
        # Deliberately NOT the builtin IndexError.
        assert not issubclass(errors.IndexError_, IndexError)

    def test_fault_family(self):
        assert issubclass(errors.DeviceFaultError, errors.StorageError)
        # Transient faults are retryable device faults.
        assert issubclass(errors.TransientDeviceError, errors.DeviceFaultError)
        # On-disk integrity failures are dataset errors, so existing
        # `except DatasetError` callers keep working.
        assert issubclass(errors.PersistError, errors.DatasetError)

    def test_simulated_crash_escapes_exception_handlers(self):
        from repro.storage import SimulatedCrash

        # A simulated power loss must not be caught by `except Exception`
        # cleanup code — that is the whole point of the simulation.
        assert issubclass(SimulatedCrash, BaseException)
        assert not issubclass(SimulatedCrash, Exception)
        assert SimulatedCrash("staged").point == "staged"


class TestMessages:
    def test_block_out_of_range_carries_context(self):
        exc = errors.BlockOutOfRangeError(7, 3)
        assert exc.block_id == 7
        assert exc.num_blocks == 3
        assert "7" in str(exc) and "3" in str(exc)

    def test_block_size_error(self):
        exc = errors.BlockSizeError(5000, 4096)
        assert exc.data_len == 5000
        assert "4096" in str(exc)

    def test_page_not_found(self):
        exc = errors.PageNotFoundError(12)
        assert exc.node_id == 12
        assert "12" in str(exc)

    def test_object_not_found(self):
        exc = errors.ObjectNotFoundError(99)
        assert exc.pointer == 99

    def test_signature_length_error(self):
        exc = errors.SignatureLengthError(64, 128)
        assert exc.left_bits == 64
        assert exc.right_bits == 128
        assert "64" in str(exc) and "128" in str(exc)


class TestCatchability:
    def test_single_base_catches_all(self):
        """Library consumers can catch everything with one except clause."""
        with pytest.raises(errors.ReproError):
            raise errors.QueryError("bad query")
        with pytest.raises(errors.ReproError):
            raise errors.DatasetError("bad data")
        with pytest.raises(errors.ReproError):
            raise errors.TreeInvariantError("bad tree")
