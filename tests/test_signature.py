"""Unit and property tests for superimposed-coding signatures."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignatureLengthError
from repro.text import ExactSignatureFactory, HashSignatureFactory, Signature

words = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=12,
)


class TestSignatureValue:
    def test_empty_has_no_bits(self):
        sig = Signature.empty(64)
        assert sig.weight() == 0
        assert sig.length_bytes == 8

    def test_bytes_roundtrip(self):
        sig = Signature(0b1011, 16)
        assert Signature.from_bytes(sig.to_bytes()) == sig

    def test_superimpose_is_or(self):
        a = Signature(0b0011, 8)
        b = Signature(0b0101, 8)
        assert (a | b).bits == 0b0111

    def test_superimpose_length_mismatch(self):
        with pytest.raises(SignatureLengthError):
            Signature(1, 8) | Signature(1, 16)

    def test_matches_containment(self):
        doc = Signature(0b1110, 8)
        assert doc.matches(Signature(0b0110, 8))
        assert not doc.matches(Signature(0b0001, 8))

    def test_matches_empty_query(self):
        assert Signature(0, 8).matches(Signature(0, 8))

    def test_bits_exceeding_width_rejected(self):
        with pytest.raises(SignatureLengthError):
            Signature(0b100000000, 8)

    def test_superimpose_all(self):
        sigs = [Signature(1 << i, 8) for i in range(3)]
        assert Signature.superimpose_all(sigs, 8).bits == 0b111

    def test_superimpose_all_checks_length(self):
        with pytest.raises(SignatureLengthError):
            Signature.superimpose_all([Signature(1, 16)], 8)


class TestHashFactory:
    def test_deterministic(self):
        a = HashSignatureFactory(8, 3, seed=5).for_word("internet")
        b = HashSignatureFactory(8, 3, seed=5).for_word("internet")
        assert a == b

    def test_seed_changes_mapping(self):
        a = HashSignatureFactory(8, 3, seed=1).for_word("internet")
        b = HashSignatureFactory(8, 3, seed=2).for_word("internet")
        assert a != b  # overwhelmingly likely for 64-bit signatures

    def test_bits_per_word_bound(self):
        factory = HashSignatureFactory(32, bits_per_word=4)
        sig = factory.for_word("pool")
        assert 1 <= sig.weight() <= 4

    def test_for_words_superimposes(self):
        factory = HashSignatureFactory(16, 3)
        combined = factory.for_words(["internet", "pool"])
        assert combined.matches(factory.for_word("internet"))
        assert combined.matches(factory.for_word("pool"))

    def test_cache_returns_same_bits(self):
        factory = HashSignatureFactory(16, 3)
        assert factory.for_word("spa").bits == factory.for_word("spa").bits

    def test_empty_word_list(self):
        factory = HashSignatureFactory(16, 3)
        assert factory.for_words([]).weight() == 0

    def test_invalid_length(self):
        with pytest.raises(SignatureLengthError):
            HashSignatureFactory(0)

    def test_invalid_bits_per_word(self):
        with pytest.raises(ValueError):
            HashSignatureFactory(8, bits_per_word=0)

    def test_length_bytes_property(self):
        assert HashSignatureFactory(189).length_bytes == 189


class TestExactFactory:
    def test_one_bit_per_word(self):
        factory = ExactSignatureFactory(["internet", "pool", "spa"])
        sigs = [factory.for_word(w) for w in ("internet", "pool", "spa")]
        assert all(sig.weight() == 1 for sig in sigs)
        assert len({sig.bits for sig in sigs}) == 3

    def test_no_false_positives(self):
        vocabulary = [f"word{i}" for i in range(50)]
        factory = ExactSignatureFactory(vocabulary)
        doc = factory.for_words(vocabulary[:10])
        for word in vocabulary[10:]:
            assert not doc.matches(factory.for_word(word))

    def test_oov_maps_to_empty_by_default(self):
        factory = ExactSignatureFactory(["pool"])
        assert factory.for_word("unknown").weight() == 0

    def test_oov_strict_raises(self):
        factory = ExactSignatureFactory(["pool"], strict=True)
        with pytest.raises(KeyError):
            factory.for_word("unknown")

    def test_width_is_byte_aligned(self):
        factory = ExactSignatureFactory([f"w{i}" for i in range(9)])
        assert factory.length_bits == 16
        sig = factory.for_words(["w0", "w8"])
        assert Signature.from_bytes(sig.to_bytes()) == sig


@given(doc=st.sets(words, max_size=30), probe=words)
@settings(max_examples=150, deadline=None)
def test_property_no_false_negatives(doc, probe):
    """A word in the document always matches the document signature."""
    factory = HashSignatureFactory(8, 3, seed=11)
    doc_sig = factory.for_words(doc | {probe})
    assert doc_sig.matches(factory.for_word(probe))


@given(doc=st.sets(words, max_size=20))
@settings(max_examples=100, deadline=None)
def test_property_superimposition_monotone(doc):
    """Adding words never clears bits: sig(A) subset of sig(A|B)."""
    factory = HashSignatureFactory(8, 3, seed=13)
    partial = factory.for_words(list(doc)[: len(doc) // 2])
    full = factory.for_words(doc)
    assert full.bits & partial.bits == partial.bits


@given(doc=st.sets(words, min_size=1, max_size=20), probe=words)
@settings(max_examples=100, deadline=None)
def test_property_exact_factory_is_exact(doc, probe):
    """The exact factory matches iff the word is in the document."""
    factory = ExactSignatureFactory(sorted(doc | {probe}))
    doc_sig = factory.for_words(doc)
    assert doc_sig.matches(factory.for_word(probe)) == (probe in doc)
