"""Degenerate-input tests: empty corpora, single objects, odd documents."""

from __future__ import annotations

import pytest

from repro import SpatialKeywordEngine, SpatialObject

KINDS = ["rtree", "iio", "ir2", "mir2", "sig", "stree"]


@pytest.mark.parametrize("kind", KINDS)
class TestEmptyCorpus:
    def test_build_and_query_empty(self, kind):
        engine = SpatialKeywordEngine(index=kind, signature_bytes=4)
        engine.build()
        assert engine.query((0.0, 0.0), ["anything"], k=3).results == []

    def test_insert_into_empty_built_engine(self, kind):
        engine = SpatialKeywordEngine(index=kind, signature_bytes=4)
        engine.build()
        engine.add(SpatialObject(1, (1.0, 1.0), "solo pool"))
        assert engine.query((0.0, 0.0), ["pool"], k=1).oids == [1]


@pytest.mark.parametrize("kind", KINDS)
class TestOddDocuments:
    def test_empty_document(self, kind):
        engine = SpatialKeywordEngine(index=kind, signature_bytes=4)
        engine.add(SpatialObject(1, (0.0, 0.0), ""))
        engine.add(SpatialObject(2, (1.0, 1.0), "pool"))
        engine.build()
        assert engine.query((0.0, 0.0), ["pool"], k=2).oids == [2]

    def test_punctuation_only_document(self, kind):
        engine = SpatialKeywordEngine(index=kind, signature_bytes=4)
        engine.add(SpatialObject(1, (0.0, 0.0), "... !!! ---"))
        engine.add(SpatialObject(2, (1.0, 1.0), "spa"))
        engine.build()
        assert engine.query((0.0, 0.0), ["spa"], k=2).oids == [2]

    def test_very_long_document(self, kind):
        engine = SpatialKeywordEngine(index=kind, signature_bytes=4)
        long_text = " ".join(f"word{i}" for i in range(3_000)) + " needle"
        engine.add(SpatialObject(1, (0.0, 0.0), long_text))
        engine.build()
        assert engine.query((5.0, 5.0), ["needle"], k=1).oids == [1]

    def test_duplicate_locations(self, kind):
        engine = SpatialKeywordEngine(index=kind, signature_bytes=4)
        for oid in range(1, 8):
            engine.add(SpatialObject(oid, (3.0, 3.0), f"pool tag{oid}"))
        engine.build()
        result = engine.query((3.0, 3.0), ["pool"], k=7)
        assert sorted(result.oids) == list(range(1, 8))
        assert all(r.distance == 0.0 for r in result.results)


class TestRankedEdgeCases:
    def test_ranked_on_empty_engine(self):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.build()
        execution = engine.query_ranked((0.0, 0.0), ["anything"], k=3)
        assert execution.results == []

    def test_ranked_single_object(self):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add(SpatialObject(1, (0.0, 0.0), "pool"))
        engine.build()
        execution = engine.query_ranked((0.0, 0.0), ["pool"], k=1)
        assert execution.oids == [1]
        assert execution.results[0].ir_score > 0

    def test_k_of_one(self):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add(SpatialObject(1, (0.0, 0.0), "pool"))
        engine.add(SpatialObject(2, (9.0, 9.0), "pool"))
        engine.build()
        assert engine.query((0.0, 0.0), ["pool"], k=1).oids == [1]

    def test_unicode_keywords(self):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        engine.add(SpatialObject(1, (0.0, 0.0), "café piscine"))
        engine.build()
        assert engine.query((0.0, 0.0), ["café"], k=1).oids == [1]
        assert engine.query((0.0, 0.0), ["CAFÉ"], k=1).oids == [1]
