"""Unit tests for the query model and execution report."""

from __future__ import annotations

import pytest

from repro.core import QueryExecution, SpatialKeywordQuery
from repro.errors import QueryError
from repro.model import SearchResult, SpatialObject
from repro.storage import DriveModel, IOStats


class TestSpatialKeywordQuery:
    def test_of_coerces_types(self):
        query = SpatialKeywordQuery.of([1, 2], ("pool",), k="3")
        assert query.point == (1.0, 2.0)
        assert query.keywords == ("pool",)
        assert query.k == 3
        assert query.dims == 2

    def test_k_must_be_positive(self):
        with pytest.raises(QueryError):
            SpatialKeywordQuery.of((0, 0), ("pool",), 0)

    def test_keywords_required(self):
        with pytest.raises(QueryError):
            SpatialKeywordQuery.of((0, 0), (), 1)

    def test_point_required(self):
        with pytest.raises(QueryError):
            SpatialKeywordQuery((), ("pool",), 1)

    def test_frozen(self):
        query = SpatialKeywordQuery.of((0, 0), ("pool",), 1)
        with pytest.raises(AttributeError):
            query.k = 5  # type: ignore[misc]


class TestQueryExecution:
    def _execution(self):
        query = SpatialKeywordQuery.of((0, 0), ("pool",), 2)
        obj = SpatialObject(1, (1.0, 0.0), "pool")
        io = IOStats()
        io.record_read(0)
        io.record_read(1)
        return QueryExecution(
            query=query,
            results=[SearchResult(obj, 1.0, score=-1.0)],
            io=io,
            objects_inspected=3,
            false_positive_candidates=2,
            algorithm="IR2",
        )

    def test_oids(self):
        assert self._execution().oids == [1]

    def test_simulated_ms_uses_drive_model(self):
        execution = self._execution()
        drive = DriveModel(seek_ms=10.0, rotation_ms=0.0, transfer_mb_per_s=4.096, block_size=4096)
        # 1 random (10 + 1) + 1 sequential (1) = 12 ms.
        assert execution.simulated_ms(drive) == pytest.approx(12.0)

    def test_summary_contains_key_figures(self):
        text = self._execution().summary()
        assert "IR2" in text
        assert "1 results" in text
        assert "3 objects" in text


class TestModel:
    def test_spatial_object_dims(self):
        assert SpatialObject(1, (1.0, 2.0, 3.0), "x").dims == 3

    def test_with_text(self):
        obj = SpatialObject(1, (0.0, 0.0), "old")
        assert obj.with_text("new").text == "new"
        assert obj.text == "old"  # frozen original unchanged

    def test_search_result_oid(self):
        result = SearchResult(SpatialObject(9, (0.0, 0.0), ""), 0.0)
        assert result.oid == 9
