"""Tests for the general ranked top-k algorithm (paper Section V.C)."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    BulkItem,
    DistanceDecayRanking,
    IR2Tree,
    LinearRanking,
    MIR2Tree,
    SpatialKeywordQuery,
    brute_force_ranked,
    bulk_load,
    ranked_top_k,
    ranked_top_k_iter,
)
from repro.spatial import Rect
from repro.storage import InMemoryBlockDevice, PageStore
from repro.text import HashSignatureFactory


def build_ir2(corpus, signature_bytes=8, capacity=8):
    pages = PageStore(InMemoryBlockDevice())
    tree = IR2Tree(pages, HashSignatureFactory(signature_bytes), capacity=capacity)
    items = [
        BulkItem(ptr, Rect.from_point(obj.point), corpus.analyzer.terms(obj.text))
        for ptr, obj in corpus.iter_items()
    ]
    bulk_load(tree, items)
    return tree


def build_mir2(corpus, capacity=8):
    pages = PageStore(InMemoryBlockDevice())
    tree = MIR2Tree(pages, (8, 16, 32), corpus.term_resolver, capacity=capacity)
    items = [
        BulkItem(ptr, Rect.from_point(obj.point), corpus.analyzer.terms(obj.text))
        for ptr, obj in corpus.iter_items()
    ]
    bulk_load(tree, items)
    return tree


def random_queries(corpus, objects, count, num_keywords, k, seed=0):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        obj = rng.choice(objects)
        terms = sorted(corpus.analyzer.terms(obj.text))
        keywords = rng.sample(terms, min(num_keywords, len(terms)))
        out.append(
            SpatialKeywordQuery.of(
                (rng.uniform(-90, 90), rng.uniform(-180, 180)), keywords, k
            )
        )
    return out


RANKINGS = [
    DistanceDecayRanking(half_distance=40.0),
    LinearRanking(alpha=0.4, max_distance=400.0),
]


@pytest.mark.parametrize("ranking", RANKINGS, ids=["decay", "linear"])
class TestRankedTopK:
    def test_matches_brute_force_scores(self, small_corpus, small_objects, ranking):
        tree = build_ir2(small_corpus)
        for query in random_queries(small_corpus, small_objects, 10, 2, 5, seed=1):
            got = ranked_top_k(
                tree, small_corpus.store, small_corpus.analyzer,
                small_corpus.vocabulary, query, ranking,
            )
            want = brute_force_ranked(
                small_objects, small_corpus.analyzer, small_corpus.vocabulary,
                query, ranking,
            )
            got_scores = [round(r.score, 9) for r in got.results]
            want_scores = [round(r.score, 9) for r in want[: len(got.results)]]
            assert got_scores == want_scores

    def test_scores_non_increasing(self, small_corpus, small_objects, ranking):
        tree = build_ir2(small_corpus)
        query = random_queries(small_corpus, small_objects, 1, 2, 15, seed=2)[0]
        outcome = ranked_top_k(
            tree, small_corpus.store, small_corpus.analyzer,
            small_corpus.vocabulary, query, ranking,
        )
        scores = [r.score for r in outcome.results]
        assert scores == sorted(scores, reverse=True)

    def test_partial_matches_allowed(self, small_corpus, small_objects, ranking):
        """No AND semantics: an object with only some keywords can rank."""
        tree = build_ir2(small_corpus)
        query = SpatialKeywordQuery.of(
            (0.0, 0.0),
            sorted(small_corpus.analyzer.terms(small_objects[0].text))[:2]
            + ["nonexistentkeyword"],
            5,
        )
        outcome = ranked_top_k(
            tree, small_corpus.store, small_corpus.analyzer,
            small_corpus.vocabulary, query, ranking,
        )
        assert outcome.results  # conjunctive semantics would find nothing

    def test_works_on_mir2_without_modification(self, small_corpus, small_objects, ranking):
        """Paper: the general algorithm operates on MIR2-Trees unchanged."""
        tree = build_mir2(small_corpus)
        for query in random_queries(small_corpus, small_objects, 5, 2, 5, seed=3):
            got = ranked_top_k(
                tree, small_corpus.store, small_corpus.analyzer,
                small_corpus.vocabulary, query, ranking,
            )
            want = brute_force_ranked(
                small_objects, small_corpus.analyzer, small_corpus.vocabulary,
                query, ranking,
            )
            got_scores = [round(r.score, 9) for r in got.results]
            want_scores = [round(r.score, 9) for r in want[: len(got.results)]]
            assert got_scores == want_scores


class TestZeroIrPruning:
    def test_prune_zero_ir_drops_nonmatching(self, small_corpus, small_objects):
        tree = build_ir2(small_corpus)
        ranking = DistanceDecayRanking(half_distance=40.0)
        query = SpatialKeywordQuery.of((0.0, 0.0), ["nonexistentkeyword"], 5)
        outcome = ranked_top_k(
            tree, small_corpus.store, small_corpus.analyzer,
            small_corpus.vocabulary, query, ranking, prune_zero_ir=True,
        )
        assert outcome.results == []

    def test_zero_ir_results_allowed_when_disabled(self, small_corpus, small_objects):
        """The paper: 'The "if" condition can be removed if results with 0
        IR score are acceptable'."""
        tree = build_ir2(small_corpus)
        ranking = LinearRanking(alpha=1.0, max_distance=400.0)  # pure distance
        query = SpatialKeywordQuery.of((0.0, 0.0), ["nonexistentkeyword"], 5)
        outcome = ranked_top_k(
            tree, small_corpus.store, small_corpus.analyzer,
            small_corpus.vocabulary, query, ranking, prune_zero_ir=False,
        )
        assert len(outcome.results) == 5
        # Pure-distance ranking + zero IR everywhere = nearest neighbors.
        distances = [r.distance for r in outcome.results]
        assert distances == sorted(distances)


class TestIncrementalForm:
    def test_iterator_yields_in_score_order(self, small_corpus, small_objects):
        tree = build_ir2(small_corpus)
        ranking = DistanceDecayRanking(half_distance=40.0)
        query = random_queries(small_corpus, small_objects, 1, 1, 3, seed=4)[0]
        iterator = ranked_top_k_iter(
            tree, small_corpus.store, small_corpus.analyzer,
            small_corpus.vocabulary, query, ranking,
        )
        previous = None
        for result in iterator:
            if previous is not None:
                assert result.score <= previous + 1e-9
            previous = result.score
