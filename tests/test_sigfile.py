"""Tests for the sequential signature file and its SIG index baseline."""

from __future__ import annotations

import random

import pytest

from repro.core import SignatureFileIndex, SpatialKeywordQuery, brute_force_top_k, make_index
from repro.errors import ObjectNotFoundError
from repro.storage import InMemoryBlockDevice
from repro.text.analyzer import DEFAULT_ANALYZER
from repro.text.sigfile import SignatureFile
from repro.text.signature import HashSignatureFactory

DOCS = [
    (0, "tennis court gift shop spa internet"),
    (100, "wireless internet pool golf course"),
    (200, "spa continental suites pool"),
    (300, "sauna pool conference rooms"),
]


@pytest.fixture
def sigfile():
    sf = SignatureFile(
        InMemoryBlockDevice(block_size=64),
        DEFAULT_ANALYZER,
        HashSignatureFactory(16, 3, seed=1),
    )
    sf.build(DOCS)
    return sf


class TestSignatureFile:
    def test_candidates_have_no_false_negatives(self, sigfile):
        candidates = sigfile.candidates(["internet", "pool"])
        assert 100 in candidates  # the only true match must be present

    def test_empty_query_keywords_give_nothing(self, sigfile):
        assert sigfile.candidates([]) == []

    def test_scan_is_mostly_sequential(self, sigfile):
        sigfile.device.stats.reset()
        sigfile.candidates(["pool"])
        stats = sigfile.device.stats
        assert stats.random_reads == 1
        assert stats.sequential_reads >= 1

    def test_add_after_build(self, sigfile):
        sigfile.add(400, "new internet pool place")
        assert 400 in sigfile.candidates(["internet", "pool"])
        assert len(sigfile) == 5

    def test_remove_tombstones(self, sigfile):
        sigfile.remove(100)
        assert 100 not in sigfile.candidates(["internet", "pool"])
        assert len(sigfile) == 3
        # The slot remains in the file footprint (tombstone).
        assert sigfile.size_bytes == 4 * (4 + 16)

    def test_remove_unknown_raises(self, sigfile):
        with pytest.raises(ObjectNotFoundError):
            sigfile.remove(999)

    def test_empty_file(self):
        sf = SignatureFile(
            InMemoryBlockDevice(block_size=64),
            DEFAULT_ANALYZER,
            HashSignatureFactory(8),
        )
        assert sf.candidates(["pool"]) == []
        assert sf.size_bytes == 0


class TestSigIndex:
    def test_agrees_with_oracle(self, small_corpus, small_objects):
        index = SignatureFileIndex(small_corpus, 8)
        index.build()
        rng = random.Random(11)
        for _ in range(10):
            anchor = rng.choice(small_objects)
            terms = sorted(small_corpus.analyzer.terms(anchor.text))
            keywords = rng.sample(terms, min(2, len(terms)))
            query = SpatialKeywordQuery.of(
                (rng.uniform(-90, 90), rng.uniform(-180, 180)), keywords, 5
            )
            expected = [
                r.oid
                for r in brute_force_top_k(small_objects, small_corpus.analyzer, query)
            ]
            assert index.execute(query).oids == expected

    def test_io_profile_sequential_heavy(self, small_corpus, small_objects):
        # 36-byte records x 300 objects spans several 4 KB blocks.
        index = SignatureFileIndex(small_corpus, 32)
        index.build()
        index.reset_io()
        anchor = small_objects[0]
        keywords = sorted(small_corpus.analyzer.terms(anchor.text))[:2]
        execution = index.execute(SpatialKeywordQuery.of((0, 0), keywords, 5))
        sig_random = execution.io.category_random_reads("sigfile")
        sig_total = execution.io.category_reads("sigfile")
        assert sig_random == 1  # whole-file scan: one seek
        assert sig_total > sig_random

    def test_maintenance(self, small_corpus, small_objects):
        from repro.model import SpatialObject

        index = SignatureFileIndex(small_corpus, 8)
        index.build()
        new = SpatialObject(77_777, (1.0, 2.0), "totallyuniquesigword")
        pointer = small_corpus.add(new)
        index.insert_object(pointer, new)
        query = SpatialKeywordQuery.of((1.0, 2.0), ["totallyuniquesigword"], 1)
        assert index.execute(query).oids == [77_777]
        assert index.delete_object(pointer, new) is True
        assert index.execute(query).oids == []
        assert index.delete_object(pointer, new) is False
        small_corpus.store.delete(77_777)
        small_corpus.vocabulary.remove_document({"totallyuniquesigword"})

    def test_factory_kind(self, small_corpus):
        assert make_index("sig", small_corpus, signature_bytes=4).label == "SIG"

    def test_size_smaller_than_object_file(self, small_corpus):
        index = SignatureFileIndex(small_corpus, 8)
        index.build()
        assert 0 < index.size_mb < small_corpus.store.size_mb


class TestEngineIncremental:
    def test_streaming_results_ordered(self, small_corpus, small_objects):
        import itertools

        from repro import SpatialKeywordEngine

        engine = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        engine.add_all(small_objects)
        engine.build()
        anchor = small_objects[5]
        keyword = sorted(engine.corpus.analyzer.terms(anchor.text))[0]
        stream = engine.query_incremental((0.0, 0.0), [keyword])
        results = list(itertools.islice(stream, 5))
        distances = [r.distance for r in results]
        assert distances == sorted(distances)

    def test_streaming_pays_io_lazily(self, small_objects):
        from repro import SpatialKeywordEngine

        engine = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        engine.add_all(small_objects)
        engine.build()
        engine.reset_io()
        anchor = small_objects[5]
        keyword = sorted(engine.corpus.analyzer.terms(anchor.text))[0]
        stream = engine.query_incremental((0.0, 0.0), [keyword])
        next(stream)
        first_reads = engine.io_stats().total_reads
        for _ in range(4):
            try:
                next(stream)
            except StopIteration:
                break
        assert engine.io_stats().total_reads >= first_reads

    def test_iio_rejects_streaming(self, small_objects):
        from repro import SpatialKeywordEngine
        from repro.errors import QueryError

        engine = SpatialKeywordEngine(index="iio")
        engine.add_all(small_objects)
        engine.build()
        with pytest.raises(QueryError):
            engine.query_incremental((0.0, 0.0), ["anything"])
