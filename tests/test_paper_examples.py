"""Trace-exact reproduction of the paper's worked Examples 1, 2 and 3.

These tests build the *exact* R-Tree of Figure 2 over the Figure-1 hotel
dataset (the grouping is uniquely determined by the MBR distances quoted
in the paper's traces) and assert the algorithms visit nodes and report
results in the paper's exact order.

Signatures use the exact (one-bit-per-word) backend so the pruning
decisions stated in Example 3 hold deterministically — the paper likewise
narrates the example with no false positives.
"""

from __future__ import annotations

import pytest

from repro.core import Corpus, IR2Tree, SpatialKeywordQuery, ir2_top_k, rtree_top_k
from repro.core.baselines import iio_top_k
from repro.datasets import (
    EXAMPLE_QUERY_KEYWORDS,
    EXAMPLE_QUERY_POINT,
    figure1_hotels,
    figure2_layout,
)
from repro.spatial import NNTrace, Rect, build_from_layout, incremental_nearest
from repro.spatial.rtree import RTree
from repro.storage import InMemoryBlockDevice, PageStore
from repro.text import ExactSignatureFactory, InvertedIndex


@pytest.fixture
def corpus():
    corpus = Corpus()
    corpus.add_all(figure1_hotels())
    return corpus


@pytest.fixture
def pointer_by_oid(corpus):
    return {obj.oid: pointer for pointer, obj in corpus.iter_items()}


@pytest.fixture
def exact_factory(corpus):
    vocabulary = set()
    for obj in corpus.objects():
        vocabulary |= corpus.analyzer.terms(obj.text)
    return ExactSignatureFactory(sorted(vocabulary))


def _build_figure2(corpus, pointer_by_oid, factory=None):
    """The Figure-2 tree; plain R-Tree or IR2-Tree with exact signatures."""
    objects = {obj.oid: obj for obj in corpus.objects()}
    pages = PageStore(InMemoryBlockDevice())
    if factory is None:
        empty_tree: RTree | None = None
        sig_for = lambda oid: b""
    else:
        empty_tree = IR2Tree(pages, factory, capacity=4)
        sig_for = lambda oid: factory.for_words(
            corpus.analyzer.terms(objects[oid].text)
        ).to_bytes()

    def leaf_entry(oid):
        return (
            pointer_by_oid[oid],
            Rect.from_point(objects[oid].point),
            sig_for(oid),
        )

    tree, names = build_from_layout(
        pages, figure2_layout(leaf_entry), capacity=4, tree=empty_tree
    )
    oid_by_pointer = {pointer: oid for oid, pointer in pointer_by_oid.items()}
    return tree, names, oid_by_pointer


class TestExample1IncrementalNN:
    """Example 1: plain incremental NN on the Figure-2 R-Tree."""

    def test_full_result_order(self, corpus, pointer_by_oid):
        tree, _, oid_of = _build_figure2(corpus, pointer_by_oid)
        order = [
            oid_of[ptr]
            for ptr, _ in incremental_nearest(tree, EXAMPLE_QUERY_POINT)
        ]
        # "H4 ... If we continue, objects H3, H5, H8, H6, H1, H7, H2 are
        # returned next."
        assert order == [4, 3, 5, 8, 6, 1, 7, 2]

    def test_node_visit_sequence(self, corpus, pointer_by_oid):
        tree, names, oid_of = _build_figure2(corpus, pointer_by_oid)
        trace = NNTrace()
        results = incremental_nearest(tree, EXAMPLE_QUERY_POINT, trace=trace)
        first_ptr, first_distance = next(results)
        # Steps 1-5 of Example 1: dequeue N1, N3, N7, then H4 at 18.5.
        node_name = {node_id: name for name, node_id in names.items()}
        dequeued = [
            node_name.get(ref, f"obj{oid_of.get(ref)}")
            for kind, ref, _ in trace.of_kind("dequeue")
        ]
        assert dequeued == ["N1", "N3", "N7", "obj4"]
        assert oid_of[first_ptr] == 4
        assert first_distance == pytest.approx(18.5, abs=0.05)

    def test_enqueue_distances_match_paper(self, corpus, pointer_by_oid):
        tree, names, _ = _build_figure2(corpus, pointer_by_oid)
        trace = NNTrace()
        next(incremental_nearest(tree, EXAMPLE_QUERY_POINT, trace=trace))
        by_ref = {ref: d for _, ref, d in trace.of_kind("enqueue")}
        # Paper's queue snapshots: N2 at 170.4, N3 at 0.0, N6 at 39.4,
        # N7 at 9.0.
        assert by_ref[names["N2"]] == pytest.approx(170.4, abs=0.05)
        assert by_ref[names["N3"]] == pytest.approx(0.0, abs=1e-9)
        assert by_ref[names["N6"]] == pytest.approx(39.4, abs=0.05)
        assert by_ref[names["N7"]] == pytest.approx(9.0, abs=0.05)


class TestExample2IIO:
    """Example 2: the Inverted Index Only baseline."""

    def test_posting_lists_match_paper(self, corpus, pointer_by_oid):
        index = InvertedIndex(InMemoryBlockDevice(), corpus.analyzer)
        index.build((ptr, obj.text) for ptr, obj in corpus.iter_items())
        oid_of = {pointer: oid for oid, pointer in pointer_by_oid.items()}
        internet = sorted(oid_of[p] for p in index.postings("internet"))
        pool = sorted(oid_of[p] for p in index.postings("pool"))
        # Step 1: H1, H2, H6, H7 contain "internet".
        assert internet == [1, 2, 6, 7]
        # Step 2: H2, H3, H4, H7, H8 contain "pool".
        assert pool == [2, 3, 4, 7, 8]

    def test_result_order_and_distances(self, corpus, pointer_by_oid):
        index = InvertedIndex(InMemoryBlockDevice(), corpus.analyzer)
        index.build((ptr, obj.text) for ptr, obj in corpus.iter_items())
        query = SpatialKeywordQuery.of(
            EXAMPLE_QUERY_POINT, EXAMPLE_QUERY_KEYWORDS, 2
        )
        outcome = iio_top_k(index, corpus.store, query)
        # Steps 5-6: L = {(H7, 181.9), (H2, 222.8)} -> return H7, H2.
        assert [r.obj.oid for r in outcome.results] == [7, 2]
        assert outcome.results[0].distance == pytest.approx(181.9, abs=0.05)
        assert outcome.results[1].distance == pytest.approx(222.8, abs=0.05)
        # IIO inspects the whole intersection, independent of k.
        assert outcome.counters.objects_inspected == 2


class TestExample3DistanceFirstIR2:
    """Example 3: the distance-first IR2-Tree algorithm with pruning."""

    def test_results(self, corpus, pointer_by_oid, exact_factory):
        tree, _, _ = _build_figure2(corpus, pointer_by_oid, exact_factory)
        query = SpatialKeywordQuery.of(
            EXAMPLE_QUERY_POINT, EXAMPLE_QUERY_KEYWORDS, 2
        )
        outcome = ir2_top_k(tree, corpus.store, corpus.analyzer, query)
        assert [r.obj.oid for r in outcome.results] == [7, 2]
        # With exact signatures there are no false positives: exactly the
        # two results are loaded (the paper's trace loads only H7 and H2).
        assert outcome.counters.objects_inspected == 2
        assert outcome.counters.false_positives == 0

    def test_trace_matches_paper(self, corpus, pointer_by_oid, exact_factory):
        tree, names, oid_of = _build_figure2(corpus, pointer_by_oid, exact_factory)
        trace = NNTrace()
        query = SpatialKeywordQuery.of(
            EXAMPLE_QUERY_POINT, EXAMPLE_QUERY_KEYWORDS, 2
        )
        outcome = ir2_top_k(tree, corpus.store, corpus.analyzer, query, trace=trace)
        assert len(outcome.results) == 2
        node_name = {node_id: name for name, node_id in names.items()}
        dequeued = [
            node_name.get(ref, f"H{oid_of.get(ref)}")
            for kind, ref, _ in trace.of_kind("dequeue")
        ]
        # Steps 1-7: N1, N2, N5, N4, then H7 and H2 pop as results.
        assert dequeued == ["N1", "N2", "N5", "N4", "H7", "H2"]

    def test_pruned_subtrees_match_paper(self, corpus, pointer_by_oid, exact_factory):
        tree, names, oid_of = _build_figure2(corpus, pointer_by_oid, exact_factory)
        trace = NNTrace()
        query = SpatialKeywordQuery.of(
            EXAMPLE_QUERY_POINT, EXAMPLE_QUERY_KEYWORDS, 2
        )
        ir2_top_k(tree, corpus.store, corpus.analyzer, query, trace=trace)
        node_name = {node_id: name for name, node_id in names.items()}
        pruned = {
            node_name.get(ref, f"H{oid_of.get(ref)}")
            for kind, ref, _ in trace.of_kind("prune")
        }
        # "The other child [N3] is discarded as it fails the signature
        # check. Objects H1 and H6 also get pruned."
        assert pruned == {"N3", "H1", "H6"}

    def test_enqueue_distances_match_paper(self, corpus, pointer_by_oid, exact_factory):
        tree, names, oid_of = _build_figure2(corpus, pointer_by_oid, exact_factory)
        trace = NNTrace()
        query = SpatialKeywordQuery.of(
            EXAMPLE_QUERY_POINT, EXAMPLE_QUERY_KEYWORDS, 2
        )
        ir2_top_k(tree, corpus.store, corpus.analyzer, query, trace=trace)
        by_ref = {ref: d for _, ref, d in trace.of_kind("enqueue")}
        pointer_of = {oid: ptr for ptr, oid in oid_of.items()}
        # Queue snapshots: N5 at 170.5, N4 at 173.8, H7 at 181.9, H2 at 222.8.
        assert by_ref[names["N5"]] == pytest.approx(170.5, abs=0.05)
        assert by_ref[names["N4"]] == pytest.approx(173.8, abs=0.05)
        assert by_ref[pointer_of[7]] == pytest.approx(181.9, abs=0.05)
        assert by_ref[pointer_of[2]] == pytest.approx(222.8, abs=0.05)


class TestRTreeBaselineOnExample:
    def test_baseline_same_answers_more_inspections(self, corpus, pointer_by_oid):
        tree, _, _ = _build_figure2(corpus, pointer_by_oid)
        query = SpatialKeywordQuery.of(
            EXAMPLE_QUERY_POINT, EXAMPLE_QUERY_KEYWORDS, 2
        )
        outcome = rtree_top_k(tree, corpus.store, corpus.analyzer, query)
        assert [r.obj.oid for r in outcome.results] == [7, 2]
        # The baseline retrieves every nearer non-matching hotel first:
        # H4, H3, H5, H8, H6, H1 all precede H7.
        assert outcome.counters.objects_inspected == 8
        assert outcome.counters.false_positives == 6
