"""Unit tests for the IR2/MIR2 signature schemes and level planning."""

from __future__ import annotations

import pytest

from repro.core.schemes import IR2Scheme, MIR2Scheme, plan_level_lengths
from repro.spatial.rtree import Entry, Node, NoSignatures
from repro.spatial.geometry import Rect
from repro.text import HashSignatureFactory, Signature


def _leaf_with(factory, docs):
    node = Node(0, 0)
    for i, terms in enumerate(docs):
        node.entries.append(
            Entry(i, Rect.from_point((float(i), 0.0)), factory.for_words(terms).to_bytes())
        )
    return node


class TestNoSignatures:
    def test_zero_everything(self):
        scheme = NoSignatures()
        assert scheme.length_for_level(0) == 0
        assert scheme.object_signature({"a"}) == b""
        assert scheme.subtree_signature(Node(0, 0), {"a"}) == b""


class TestIR2Scheme:
    def test_fixed_length(self):
        scheme = IR2Scheme(HashSignatureFactory(8))
        assert scheme.length_for_level(0) == 8
        assert scheme.length_for_level(5) == 8

    def test_parent_is_or_of_entries(self):
        factory = HashSignatureFactory(8)
        scheme = IR2Scheme(factory)
        node = _leaf_with(factory, [{"a", "b"}, {"c"}])
        parent_sig = Signature.from_bytes(scheme.entry_signature_for_child(None, node))
        assert parent_sig == factory.for_words({"a", "b", "c"})

    def test_empty_child_gives_zero_signature(self):
        scheme = IR2Scheme(HashSignatureFactory(8))
        assert scheme.entry_signature_for_child(None, Node(0, 0)) == bytes(8)

    def test_object_signature(self):
        factory = HashSignatureFactory(8)
        scheme = IR2Scheme(factory)
        assert scheme.object_signature({"pool"}) == factory.for_words({"pool"}).to_bytes()

    def test_subtree_signature_ignores_terms_arg(self):
        factory = HashSignatureFactory(8)
        scheme = IR2Scheme(factory)
        node = _leaf_with(factory, [{"a"}])
        assert scheme.subtree_signature(node, {"zzz"}) == node.or_signature()


class TestMIR2Scheme:
    def test_level_lengths_clamped(self):
        scheme = MIR2Scheme((4, 8), lambda ptr: set())
        assert scheme.length_for_level(0) == 4
        assert scheme.length_for_level(1) == 8
        assert scheme.length_for_level(9) == 8
        assert scheme.length_for_level(-1) == 4

    def test_empty_lengths_rejected(self):
        with pytest.raises(ValueError):
            MIR2Scheme((), lambda ptr: set())

    def test_subtree_signature_uses_parent_level_factory(self):
        scheme = MIR2Scheme((4, 8, 16), lambda ptr: set())
        leaf = Node(0, 0)
        sig = scheme.subtree_signature(leaf, {"pool", "spa"})
        assert len(sig) == 8  # child level 0 -> parent level 1
        expected = scheme.factory_for_level(1).for_words({"pool", "spa"})
        assert Signature.from_bytes(sig) == expected

    def test_entry_signature_walks_resolver(self):
        resolved = []

        def resolver(ptr):
            resolved.append(ptr)
            return {f"word{ptr}"}

        scheme = MIR2Scheme((4, 8), resolver)
        leaf = Node(0, 0)
        leaf.entries = [Entry(5, Rect.from_point((0.0, 0.0)), bytes(4))]
        sig = scheme.entry_signature_for_child(None, leaf)
        assert resolved == [5]
        assert Signature.from_bytes(sig) == scheme.factory_for_level(1).for_words(
            {"word5"}
        )


class TestPlanLevelLengths:
    def test_leaf_length_preserved(self):
        assert plan_level_lengths(8, 14, 70_000, 113)[0] == 8

    def test_growth_bounded_by_vocabulary(self):
        lengths = plan_level_lengths(8, 14, 1_000, 113, max_levels=6)
        ratio = lengths[-1] / lengths[0]
        assert ratio <= 1_000 / 14 + 1

    def test_invalid_leaf_length(self):
        with pytest.raises(ValueError):
            plan_level_lengths(0, 14, 1_000, 113)

    def test_small_branching_grows_slowly(self):
        fast = plan_level_lengths(8, 14, 100_000, 113)
        slow = plan_level_lengths(8, 14, 100_000, 4)
        assert slow[1] <= fast[1]
