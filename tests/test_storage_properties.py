"""Hypothesis property tests for the storage substrates."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import SpatialObject
from repro.storage import InMemoryBlockDevice, ObjectStore, PageStore
from repro.text.analyzer import DEFAULT_ANALYZER
from repro.text.inverted_index import InvertedIndex

texts = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd", "Zs"), max_codepoint=0x2FF
    ),
    max_size=200,
)
finite = st.floats(-1e9, 1e9, allow_nan=False)


@given(
    rows=st.lists(
        st.tuples(finite, finite, texts), min_size=1, max_size=40
    ),
    block_size=st.sampled_from([32, 64, 256, 4096]),
)
@settings(max_examples=60, deadline=None)
def test_property_object_store_roundtrip(rows, block_size):
    """Every appended object loads back equal (modulo text sanitization)."""
    store = ObjectStore(InMemoryBlockDevice(block_size=block_size))
    pointers = []
    for oid, (x, y, text) in enumerate(rows):
        pointers.append(store.append(SpatialObject(oid, (x, y), text)))
    for oid, pointer in enumerate(pointers):
        loaded = store.load(pointer)
        assert loaded.oid == oid
        assert loaded.point == (rows[oid][0], rows[oid][1])
        sanitized = rows[oid][2].replace("\t", " ").replace("\n", " ").replace(
            "\r", " "
        )
        assert loaded.text == sanitized


@given(
    images=st.lists(st.binary(min_size=0, max_size=600), min_size=1, max_size=25),
    rewrites=st.lists(st.tuples(st.integers(0, 24), st.binary(max_size=600)), max_size=15),
)
@settings(max_examples=60, deadline=None)
def test_property_page_store_holds_latest_image(images, rewrites):
    """After arbitrary writes/rewrites each node returns its last image."""
    pages = PageStore(InMemoryBlockDevice(block_size=64))
    latest: dict[int, bytes] = {}
    ids = []
    for image in images:
        node_id = pages.new_node_id()
        pages.write(node_id, image)
        latest[node_id] = image
        ids.append(node_id)
    for index, image in rewrites:
        node_id = ids[index % len(ids)]
        pages.write(node_id, image)
        latest[node_id] = image
    for node_id, image in latest.items():
        assert pages.read(node_id)[: len(image)] == image


@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["add", "remove"]),
            st.integers(0, 15),  # pointer
            st.lists(st.sampled_from(["alpha", "beta", "gamma", "delta"]),
                     min_size=1, max_size=3),
        ),
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_inverted_index_matches_dict_model(operations):
    """Random add/remove streams agree with a plain dict-of-sets model."""
    index = InvertedIndex(InMemoryBlockDevice(block_size=64), DEFAULT_ANALYZER)
    model: dict[str, set[int]] = {}
    for op, pointer, words in operations:
        text = " ".join(words)
        if op == "add":
            index.add(pointer, text)
            for word in words:
                model.setdefault(word, set()).add(pointer)
        else:
            index.remove(pointer, text)
            for word in words:
                model.get(word, set()).discard(pointer)
    for word in ("alpha", "beta", "gamma", "delta"):
        expected = sorted(model.get(word, set()))
        assert index.postings(word) == expected
        assert index.document_frequency(word) == len(expected)


@given(
    documents=st.lists(
        st.lists(st.sampled_from([f"w{i}" for i in range(30)]),
                 min_size=1, max_size=6),
        min_size=1,
        max_size=25,
    ),
    query=st.lists(st.sampled_from([f"w{i}" for i in range(30)]),
                   min_size=1, max_size=3, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_property_conjunction_equals_set_intersection(documents, query):
    index = InvertedIndex(InMemoryBlockDevice(block_size=64), DEFAULT_ANALYZER)
    corpus = [(i * 7, " ".join(words)) for i, words in enumerate(documents)]
    index.build(corpus)
    expected = sorted(
        pointer
        for pointer, text in corpus
        if set(query) <= set(text.split())
    )
    assert index.retrieve_conjunction(query) == expected


@given(
    a=st.lists(st.integers(0, 10_000), unique=True).map(sorted),
    b=st.lists(st.integers(0, 10_000), unique=True).map(sorted),
)
@settings(max_examples=150, deadline=None)
def test_property_galloping_intersection_equals_set_intersection(a, b):
    from repro.text.inverted_index import intersect_sorted

    assert intersect_sorted(a, b) == sorted(set(a) & set(b))
