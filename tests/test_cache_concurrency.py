"""Hammer :class:`BufferPoolDevice` from many threads.

The buffer pool sits in front of a shared block device in the serving
layer, so its LRU map and hit/miss counters must stay consistent under
concurrent readers and writers: no torn cache entries, no lost counter
increments, and ``hits + misses`` equal to the number of reads issued.
"""

from __future__ import annotations

import random
import threading

from repro.storage import BufferPoolDevice, InMemoryBlockDevice

N_BLOCKS = 48
BLOCK_SIZE = 256


def expected_content(block_id: int) -> bytes:
    """The canonical (padded) content of block ``block_id``."""
    return f"blk-{block_id}".encode().ljust(BLOCK_SIZE, b"\x00")


def make_pool(capacity: int = 16) -> BufferPoolDevice:
    inner = InMemoryBlockDevice(BLOCK_SIZE)
    for block_id in range(N_BLOCKS):
        inner.write_block(block_id, expected_content(block_id))
    inner.stats.reset()
    return BufferPoolDevice(inner, capacity_blocks=capacity)


def run_threads(workers):
    threads = [threading.Thread(target=fn) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestConcurrentReads:
    def test_contents_and_counters_stay_consistent(self):
        pool = make_pool(capacity=8)
        n_threads, reads_each = 8, 400
        failures: list[str] = []

        def reader(seed: int):
            rng = random.Random(seed)
            for _ in range(reads_each):
                block_id = rng.randrange(N_BLOCKS)
                data = pool.read_block(block_id)
                if data != expected_content(block_id):
                    failures.append(f"torn read of block {block_id}")
                    return

        run_threads([lambda s=s: reader(s) for s in range(n_threads)])
        assert not failures
        total = n_threads * reads_each
        # The satellite's invariant: every read is classified exactly once.
        assert pool.hits + pool.misses == total
        assert pool.misses == pool.inner.stats.total_reads
        assert pool.hits > 0  # with 8 cached of 48 blocks some must repeat
        assert len(pool._cache) <= pool.capacity_blocks

    def test_hot_set_smaller_than_capacity_hits_after_warmup(self):
        pool = make_pool(capacity=N_BLOCKS)

        def reader():
            for block_id in range(N_BLOCKS):
                assert pool.read_block(block_id) == expected_content(block_id)

        reader()  # warm up: all misses
        assert pool.misses == N_BLOCKS
        run_threads([reader for _ in range(6)])
        assert pool.misses == N_BLOCKS  # everything else was a hit
        assert pool.hits == 6 * N_BLOCKS


class TestConcurrentReadWrite:
    def test_writers_and_readers_never_tear_blocks(self):
        pool = make_pool(capacity=12)
        stop = threading.Event()
        failures: list[str] = []

        def writer(seed: int):
            rng = random.Random(1000 + seed)
            for _ in range(200):
                block_id = rng.randrange(N_BLOCKS)
                # Every writer writes the canonical content, so any read —
                # cached or through — must observe exactly that content.
                pool.write_block(block_id, expected_content(block_id))

        def reader(seed: int):
            rng = random.Random(seed)
            while not stop.is_set():
                block_id = rng.randrange(N_BLOCKS)
                data = pool.read_block(block_id)
                if data != expected_content(block_id):
                    failures.append(f"torn read of block {block_id}")
                    return

        readers = [threading.Thread(target=reader, args=(s,)) for s in range(4)]
        writers = [threading.Thread(target=writer, args=(s,)) for s in range(4)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not failures
        assert len(pool._cache) <= pool.capacity_blocks
        # Cached copies equal the device's truth block for block.
        for block_id, cached in pool._cache.items():
            assert cached == expected_content(block_id)

    def test_cache_hits_do_not_stall_behind_a_slow_disk_write(self):
        """Regression: the pool lock must never be held across disk I/O.

        An earlier version of ``write_block`` held the pool lock around
        the inner device write, so every concurrent cache hit stalled
        for the full disk write latency.  Here a writer is parked inside
        a deliberately slow inner write while a reader serves hits from
        the cache; the reader must finish while the write is still in
        flight.
        """
        write_started = threading.Event()
        release_write = threading.Event()

        class SlowWriteDevice(InMemoryBlockDevice):
            def write_block(self, block_id, data, category="data"):
                write_started.set()
                assert release_write.wait(timeout=10.0), "test hung"
                super().write_block(block_id, data, category)

        inner = SlowWriteDevice(BLOCK_SIZE)
        # Populate through the parent class so the events stay unset.
        for block_id in range(8):
            InMemoryBlockDevice.write_block(
                inner, block_id, expected_content(block_id)
            )
        pool = BufferPoolDevice(inner, capacity_blocks=8)
        for block_id in range(4):
            pool.read_block(block_id)  # warm the cache
        hits_before = pool.hits

        writer = threading.Thread(
            target=pool.write_block, args=(7, expected_content(7))
        )
        writer.start()
        assert write_started.wait(timeout=10.0)

        observed: list[bytes] = []
        reader = threading.Thread(
            target=lambda: observed.extend(
                pool.read_block(block_id) for block_id in range(4)
            )
        )
        reader.start()
        reader.join(timeout=5.0)
        stalled = reader.is_alive()
        # Release the writer before asserting so a failure cannot leak a
        # parked thread past the test.
        release_write.set()
        writer.join(timeout=10.0)
        if stalled:
            reader.join(timeout=10.0)
        assert not stalled, "cache hits stalled behind an in-flight disk write"
        assert observed == [expected_content(b) for b in range(4)]
        assert pool.hits == hits_before + 4  # all four served from cache
        # The write itself landed: disk and cache agree on the new block.
        assert inner.read_block(7) == expected_content(7)
        assert pool.read_block(7) == expected_content(7)

    def test_concurrent_clear_is_safe(self):
        pool = make_pool(capacity=16)
        failures: list[str] = []

        def reader(seed: int):
            rng = random.Random(seed)
            for _ in range(300):
                block_id = rng.randrange(N_BLOCKS)
                if pool.read_block(block_id) != expected_content(block_id):
                    failures.append("torn read")
                    return

        def clearer():
            for _ in range(20):
                pool.clear()

        run_threads([lambda s=s: reader(s) for s in range(4)] + [clearer])
        assert not failures
        # After the dust settles the counters still balance.
        assert pool.hits >= 0 and pool.misses >= 0
