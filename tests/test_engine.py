"""Tests for the SpatialKeywordEngine facade."""

from __future__ import annotations

import pytest

from repro import SpatialKeywordEngine, SpatialObject
from repro.datasets import figure1_hotels
from repro.errors import IndexError_, QueryError


@pytest.fixture(params=["rtree", "iio", "ir2", "mir2"])
def engine(request):
    engine = SpatialKeywordEngine(index=request.param, signature_bytes=8)
    engine.add_all(figure1_hotels())
    engine.build()
    return engine


class TestQueries:
    def test_running_example(self, engine):
        execution = engine.query((30.5, 100.0), ["internet", "pool"], k=2)
        assert execution.oids == [7, 2]

    def test_k_default(self, engine):
        execution = engine.query((30.5, 100.0), ["pool"])
        assert len(execution.oids) == 5  # every pool hotel

    def test_execution_reports_costs(self, engine):
        execution = engine.query((30.5, 100.0), ["pool"], k=1)
        assert execution.simulated_ms() >= 0.0
        assert execution.io.total_reads >= 1


class TestRankedQueries:
    def test_ranked_on_signature_indexes(self):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        engine.add_all(figure1_hotels())
        engine.build()
        execution = engine.query_ranked((30.5, 100.0), ["internet", "pool"], k=3)
        scores = [r.score for r in execution.results]
        assert scores == sorted(scores, reverse=True)
        assert execution.algorithm == "IR2-RANKED"

    def test_ranked_rejected_on_baselines(self):
        engine = SpatialKeywordEngine(index="rtree")
        engine.add_all(figure1_hotels())
        engine.build()
        with pytest.raises(QueryError):
            engine.query_ranked((0, 0), ["pool"], k=1)

    def test_custom_ranking_validated(self):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        engine.add_all(figure1_hotels())
        engine.build()
        with pytest.raises(QueryError):
            engine.query_ranked(
                (0, 0), ["pool"], k=1, ranking=lambda d, ir: d  # increasing!
            )


class TestMutation:
    def test_add_after_build_is_live(self, engine):
        engine.add_object(99, (30.5, 100.0), "internet pool brand-new")
        execution = engine.query((30.5, 100.0), ["internet", "pool"], k=1)
        assert execution.oids == [99]

    def test_duplicate_oid_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.add_object(1, (0.0, 0.0), "duplicate")

    def test_delete(self, engine):
        assert engine.delete(7) is True
        execution = engine.query((30.5, 100.0), ["internet", "pool"], k=2)
        assert execution.oids == [2]

    def test_delete_unknown_returns_false(self, engine):
        assert engine.delete(123456) is False

    def test_delete_before_build_rejected(self):
        engine = SpatialKeywordEngine()
        engine.add_object(1, (0.0, 0.0), "pool")
        with pytest.raises(IndexError_):
            engine.delete(1)


class TestIntrospection:
    def test_len(self, engine):
        assert len(engine) == 8

    def test_corpus_stats(self, engine):
        stats = engine.corpus_stats()
        assert stats.total_objects == 8

    def test_index_size(self, engine):
        assert engine.index_size_mb() > 0

    def test_io_stats_and_reset(self, engine):
        engine.query((30.5, 100.0), ["pool"], k=1)
        assert engine.io_stats().total_accesses > 0
        engine.reset_io()
        assert engine.io_stats().total_accesses == 0


class TestDocstringExample:
    def test_package_quickstart(self):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=16)
        engine.add_object(7, (-33.2, -70.4), "internet airport transportation pool")
        engine.add_object(4, (39.5, 116.2), "sauna pool conference rooms")
        engine.build()
        top = engine.query(point=(30.5, 100.0), keywords=["pool"], k=1)
        assert top.results[0].obj.oid == 4

    def test_add_accepts_spatial_objects(self):
        engine = SpatialKeywordEngine()
        engine.add(SpatialObject(1, (1.0, 2.0), "pool"))
        engine.build()
        assert engine.query((1.0, 2.0), ["pool"], 1).oids == [1]
