"""Tests for the S-Tree [Dep86], the IR2-Tree's textual ancestor."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TreeInvariantError
from repro.storage import InMemoryBlockDevice, PageStore
from repro.text.analyzer import DEFAULT_ANALYZER
from repro.text.signature import HashSignatureFactory
from repro.text.stree import STree


def make_tree(capacity=8, signature_bytes=8, seed=3):
    return STree(
        PageStore(InMemoryBlockDevice()),
        DEFAULT_ANALYZER,
        HashSignatureFactory(signature_bytes, 3, seed=seed),
        capacity=capacity,
    )


def random_docs(n, vocab=40, words=5, seed=0):
    rng = random.Random(seed)
    return [
        (i, " ".join(f"w{rng.randrange(vocab)}" for _ in range(words)))
        for i in range(n)
    ]


class TestConstruction:
    def test_empty_tree(self):
        tree = make_tree()
        assert tree.height == 1
        assert tree.size == 0
        tree.validate()
        assert tree.candidates(["anything"]) == []

    def test_capacity_validated(self):
        with pytest.raises(TreeInvariantError):
            make_tree(capacity=1)

    def test_inserts_split_and_balance(self):
        tree = make_tree(capacity=4)
        for pointer, text in random_docs(60):
            tree.insert(pointer, text)
        assert tree.height >= 2
        assert tree.size == 60
        tree.validate()

    def test_disk_resident(self):
        tree = make_tree()
        for pointer, text in random_docs(30):
            tree.insert(pointer, text)
        stats = tree.pages.device.stats
        stats.reset()
        tree.candidates(["w1"])
        assert stats.category_reads("node") >= 1


class TestCandidates:
    def test_no_false_negatives(self):
        docs = random_docs(80, seed=5)
        tree = make_tree(capacity=6)
        for pointer, text in docs:
            tree.insert(pointer, text)
        for pointer, text in docs:
            terms = sorted(DEFAULT_ANALYZER.terms(text))[:2]
            assert pointer in tree.candidates(terms)

    def test_empty_keywords_give_nothing(self):
        tree = make_tree()
        tree.insert(0, "pool spa")
        assert tree.candidates([]) == []

    def test_conjunction_semantics(self):
        tree = make_tree(signature_bytes=64)  # long sigs: few false drops
        tree.insert(1, "alpha beta")
        tree.insert(2, "alpha gamma")
        tree.insert(3, "beta gamma")
        candidates = tree.candidates(["alpha", "beta"])
        assert 1 in candidates
        # With 64-byte signatures over 3 tiny documents the false-drop
        # probability is negligible.
        assert candidates == [1]

    def test_pruning_actually_happens(self):
        """A query on a word absent from the corpus should skip subtrees."""
        docs = random_docs(120, vocab=20, seed=7)
        tree = make_tree(capacity=6, signature_bytes=64)
        for pointer, text in docs:
            tree.insert(pointer, text)
        stats = tree.pages.device.stats
        stats.reset()
        assert tree.candidates(["absentword"]) == []
        total_nodes = sum(1 for _ in tree.iter_nodes())
        assert stats.category_reads("node") < total_nodes

    def test_similarity_grouping_beats_random_grouping(self):
        """The least-weight-increase heuristic should visit fewer nodes
        than chance for selective queries (S-Tree's entire point)."""
        rng = random.Random(11)
        # Two disjoint topic vocabularies.
        docs = []
        for i in range(120):
            topic = "a" if i % 2 == 0 else "b"
            words = " ".join(f"{topic}{rng.randrange(15)}" for _ in range(5))
            docs.append((i, words))
        tree = make_tree(capacity=6, signature_bytes=32)
        for pointer, text in docs:
            tree.insert(pointer, text)
        stats = tree.pages.device.stats
        stats.reset()
        tree.candidates(["a1", "a2"])
        visited = stats.category_reads("node")
        total = sum(1 for _ in tree.iter_nodes())
        assert visited < total  # at least some cross-topic pruning


@given(
    docs=st.lists(
        st.lists(st.sampled_from([f"w{i}" for i in range(25)]),
                 min_size=1, max_size=5),
        min_size=1,
        max_size=50,
    ),
    query=st.lists(st.sampled_from([f"w{i}" for i in range(25)]),
                   min_size=1, max_size=2, unique=True),
)
@settings(max_examples=50, deadline=None)
def test_property_candidates_superset_of_true_matches(docs, query):
    """S-Tree candidates always include every true conjunctive match."""
    tree = make_tree(capacity=4, signature_bytes=4)
    corpus = [(i, " ".join(words)) for i, words in enumerate(docs)]
    for pointer, text in corpus:
        tree.insert(pointer, text)
    tree.validate()
    truth = {
        pointer
        for pointer, text in corpus
        if set(query) <= set(text.split())
    }
    assert truth <= set(tree.candidates(query))


class TestSTreeIndexIntegration:
    def test_factory_kind(self, small_corpus):
        from repro.core import make_index

        index = make_index("stree", small_corpus, signature_bytes=8)
        assert index.label == "STREE"

    def test_engine_agrees_with_oracle(self, small_objects):
        import random as _random

        from repro import SpatialKeywordEngine
        from repro.core import SpatialKeywordQuery, brute_force_top_k

        engine = SpatialKeywordEngine(index="stree", signature_bytes=16)
        engine.add_all(small_objects)
        engine.build()
        rng = _random.Random(13)
        for _ in range(6):
            anchor = rng.choice(small_objects)
            terms = sorted(engine.corpus.analyzer.terms(anchor.text))
            keywords = rng.sample(terms, min(2, len(terms)))
            query = SpatialKeywordQuery.of(
                (rng.uniform(-90, 90), rng.uniform(-180, 180)), keywords, 5
            )
            expected = [
                r.oid
                for r in brute_force_top_k(
                    small_objects, engine.corpus.analyzer, query
                )
            ]
            assert engine.index.execute(query).oids == expected

    def test_live_insert(self, small_objects):
        from repro import SpatialKeywordEngine, SpatialObject

        engine = SpatialKeywordEngine(index="stree", signature_bytes=16)
        engine.add_all(small_objects)
        engine.build()
        engine.add(SpatialObject(5_555, (3.0, 4.0), "freshstreeword pool"))
        result = engine.query((3.0, 4.0), ["freshstreeword"], k=1)
        assert result.oids == [5_555]

    def test_delete_unsupported(self, small_objects):
        from repro import SpatialKeywordEngine
        from repro.errors import IndexError_

        engine = SpatialKeywordEngine(index="stree", signature_bytes=16)
        engine.add_all(small_objects)
        engine.build()
        with pytest.raises(IndexError_):
            engine.delete(small_objects[0].oid)

    def test_persistence_unsupported_with_clear_error(self, small_objects, tmp_path):
        from repro import SpatialKeywordEngine
        from repro.errors import DatasetError
        from repro.persist import save_engine

        engine = SpatialKeywordEngine(index="stree", signature_bytes=16)
        engine.add_all(small_objects)
        engine.build()
        with pytest.raises(DatasetError):
            save_engine(engine, str(tmp_path / "saved"))
