"""Tests for area-anchored queries (Section III: "an area could be used
instead" of the query point)."""

from __future__ import annotations

import random

import pytest

from repro import SpatialKeywordEngine
from repro.core import (
    IIOIndex,
    IR2Index,
    MIR2Index,
    RTreeIndex,
    SpatialKeywordQuery,
    brute_force_top_k,
)
from repro.datasets import figure1_hotels
from repro.errors import QueryError
from repro.spatial import Rect


class TestRectToRectMinDistance:
    def test_overlapping_is_zero(self):
        a = Rect((0.0, 0.0), (4.0, 4.0))
        b = Rect((2.0, 2.0), (6.0, 6.0))
        assert a.min_distance_rect(b) == 0.0

    def test_touching_is_zero(self):
        a = Rect((0.0, 0.0), (4.0, 4.0))
        b = Rect((4.0, 0.0), (6.0, 4.0))
        assert a.min_distance_rect(b) == 0.0

    def test_axis_gap(self):
        a = Rect((0.0, 0.0), (4.0, 4.0))
        b = Rect((7.0, 1.0), (9.0, 3.0))
        assert a.min_distance_rect(b) == 3.0

    def test_diagonal_gap(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((4.0, 5.0), (6.0, 7.0))
        assert a.min_distance_rect(b) == 5.0

    def test_symmetric(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((5.0, -3.0), (6.0, -2.0))
        assert a.min_distance_rect(b) == b.min_distance_rect(a)

    def test_degenerate_equals_point_mindist(self):
        rect = Rect((0.0, 0.0), (4.0, 4.0))
        point = (7.0, 8.0)
        assert rect.min_distance_rect(Rect.from_point(point)) == pytest.approx(
            rect.min_distance(point)
        )


class TestAreaQueryModel:
    def test_of_area_sets_point_to_center(self):
        area = Rect((0.0, 0.0), (10.0, 20.0))
        query = SpatialKeywordQuery.of_area(area, ["pool"], 3)
        assert query.point == (5.0, 10.0)
        assert query.target is area

    def test_point_query_target_is_point(self):
        query = SpatialKeywordQuery.of((1.0, 2.0), ["pool"], 1)
        assert query.target == (1.0, 2.0)

    def test_area_dims_must_match(self):
        with pytest.raises(QueryError):
            SpatialKeywordQuery(
                (0.0, 0.0, 0.0), ("pool",), 1, Rect((0.0, 0.0), (1.0, 1.0))
            )


class TestEngineAreaQueries:
    def test_objects_inside_area_rank_first(self):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        engine.add_all(figure1_hotels())
        engine.build()
        # An area covering East Asia: H3 (Tokyo-ish) and H4 (Beijing-ish)
        # both have pools and fall inside -> distance 0, order by oid.
        execution = engine.index.execute(
            SpatialKeywordQuery.of_area(
                Rect((30.0, 110.0), (45.0, 145.0)), ["pool"], 3
            )
        )
        assert set(execution.oids[:2]) == {3, 4}
        assert execution.results[0].distance == 0.0
        assert execution.results[1].distance == 0.0
        assert execution.results[2].distance > 0.0

    def test_engine_query_area_wrapper(self):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        engine.add_all(figure1_hotels())
        engine.build()
        execution = engine.query_area(
            (30.0, 110.0), (45.0, 145.0), ["pool"], k=2
        )
        assert set(execution.oids) == {3, 4}

    def test_all_algorithms_agree_on_area_queries(self, small_corpus, small_objects):
        indexes = [
            RTreeIndex(small_corpus),
            IIOIndex(small_corpus),
            IR2Index(small_corpus, 8),
            MIR2Index(small_corpus, 8),
        ]
        for index in indexes:
            index.build()
        rng = random.Random(17)
        for _ in range(8):
            anchor = rng.choice(small_objects)
            terms = sorted(small_corpus.analyzer.terms(anchor.text))
            keywords = rng.sample(terms, min(2, len(terms)))
            lo = (rng.uniform(-90, 0), rng.uniform(-180, 0))
            hi = (lo[0] + rng.uniform(1, 60), lo[1] + rng.uniform(1, 120))
            query = SpatialKeywordQuery.of_area(Rect(lo, hi), keywords, 5)
            expected = [
                r.oid
                for r in brute_force_top_k(
                    small_objects, small_corpus.analyzer, query
                )
            ]
            for index in indexes:
                assert index.execute(query).oids == expected, index.label

    def test_ranked_area_query(self, small_corpus, small_objects):
        from repro.core import DistanceDecayRanking, brute_force_ranked, ranked_top_k
        from repro.core.builder import BulkItem, bulk_load
        from repro.core.ir2tree import IR2Tree
        from repro.storage import InMemoryBlockDevice, PageStore
        from repro.text import HashSignatureFactory

        tree = IR2Tree(PageStore(InMemoryBlockDevice()), HashSignatureFactory(8), capacity=8)
        items = [
            BulkItem(ptr, Rect.from_point(obj.point), small_corpus.analyzer.terms(obj.text))
            for ptr, obj in small_corpus.iter_items()
        ]
        bulk_load(tree, items)
        ranking = DistanceDecayRanking(half_distance=40.0)
        anchor = small_objects[3]
        terms = sorted(small_corpus.analyzer.terms(anchor.text))[:2]
        query = SpatialKeywordQuery.of_area(
            Rect((-30.0, -60.0), (30.0, 60.0)), terms, 5
        )
        got = ranked_top_k(
            tree, small_corpus.store, small_corpus.analyzer,
            small_corpus.vocabulary, query, ranking,
        )
        want = brute_force_ranked(
            small_objects, small_corpus.analyzer, small_corpus.vocabulary,
            query, ranking,
        )
        assert [round(r.score, 9) for r in got.results] == [
            round(r.score, 9) for r in want[: len(got.results)]
        ]
