"""Unit tests for the simulated drive timing model."""

from __future__ import annotations

import pytest

from repro.storage import DEFAULT_DRIVE, DriveModel, IOStats


class TestDriveModel:
    def test_random_access_includes_seek_rotation_transfer(self):
        drive = DriveModel(seek_ms=4.0, rotation_ms=3.0, transfer_mb_per_s=40.96, block_size=4096)
        assert drive.transfer_ms == pytest.approx(0.1)
        assert drive.random_access_ms == pytest.approx(7.1)
        assert drive.sequential_access_ms == pytest.approx(0.1)

    def test_simulated_ms_combines_patterns(self):
        drive = DriveModel(seek_ms=5.0, rotation_ms=5.0, transfer_mb_per_s=4.096, block_size=4096)
        stats = IOStats()
        stats.record_read(0)  # random
        stats.record_read(1)  # sequential
        stats.record_read(2)  # sequential
        # random = 10 + 1 = 11 ms, sequential = 1 ms each
        assert drive.simulated_ms(stats) == pytest.approx(13.0)

    def test_writes_charged_like_reads(self):
        drive = DriveModel()
        reads = IOStats()
        reads.record_read(0)
        writes = IOStats()
        writes.record_write(0)
        assert drive.simulated_ms(reads) == drive.simulated_ms(writes)

    def test_random_dominates_sequential(self):
        """The paper: execution time is primarily proportional to random
        accesses — the model must price a random access much higher."""
        assert DEFAULT_DRIVE.random_access_ms > 20 * DEFAULT_DRIVE.sequential_access_ms

    def test_zero_stats_zero_time(self):
        assert DEFAULT_DRIVE.simulated_ms(IOStats()) == 0.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_DRIVE.seek_ms = 1.0  # type: ignore[misc]
