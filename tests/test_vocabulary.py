"""Unit tests for corpus vocabulary statistics."""

from __future__ import annotations

import math

import pytest

from repro.text import Vocabulary


class TestDocumentFrequency:
    def test_df_counts_documents_not_occurrences(self):
        vocab = Vocabulary()
        vocab.add_document({"pool", "spa"})
        vocab.add_document({"pool"})
        assert vocab.document_frequency("pool") == 2
        assert vocab.document_frequency("spa") == 1
        assert vocab.document_frequency("gym") == 0

    def test_contains_and_len(self):
        vocab = Vocabulary()
        vocab.add_document({"pool", "spa"})
        assert "pool" in vocab
        assert "gym" not in vocab
        assert len(vocab) == 2

    def test_remove_document(self):
        vocab = Vocabulary()
        vocab.add_document({"pool", "spa"})
        vocab.add_document({"pool"})
        vocab.remove_document({"pool", "spa"})
        assert vocab.document_frequency("pool") == 1
        assert vocab.document_frequency("spa") == 0
        assert vocab.document_count == 1

    def test_remove_never_goes_negative(self):
        vocab = Vocabulary()
        vocab.remove_document({"ghost"})
        assert vocab.document_count == 0
        assert vocab.document_frequency("ghost") == 0


class TestIdf:
    def test_rarer_terms_score_higher(self):
        vocab = Vocabulary()
        for i in range(10):
            terms = {"common"}
            if i == 0:
                terms.add("rare")
            vocab.add_document(terms)
        assert vocab.idf("rare") > vocab.idf("common")

    def test_idf_formula(self):
        vocab = Vocabulary()
        vocab.add_document({"a"})
        vocab.add_document({"a", "b"})
        assert vocab.idf("a") == pytest.approx(math.log(1 + 2 / 2))
        assert vocab.idf("b") == pytest.approx(math.log(1 + 2 / 1))

    def test_unseen_term_gets_max_idf(self):
        vocab = Vocabulary()
        vocab.add_document({"a"})
        vocab.add_document({"b"})
        assert vocab.idf("zzz") == pytest.approx(math.log(1 + 2))
        assert vocab.idf("zzz") >= vocab.idf("a")

    def test_empty_corpus_idf_defined(self):
        assert Vocabulary().idf("anything") > 0


class TestAggregates:
    def test_unique_words(self):
        vocab = Vocabulary()
        vocab.add_document({"a", "b"})
        vocab.add_document({"b", "c"})
        assert vocab.unique_words == 3

    def test_average_unique_words_per_document(self):
        vocab = Vocabulary()
        vocab.add_document({"a", "b"})
        vocab.add_document({"b", "c", "d", "e"})
        assert vocab.average_unique_words_per_document == 3.0

    def test_average_on_empty_corpus(self):
        assert Vocabulary().average_unique_words_per_document == 0.0

    def test_terms_iteration(self):
        vocab = Vocabulary()
        vocab.add_document({"x", "y"})
        assert set(vocab.terms()) == {"x", "y"}
