"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets import figure1_hotels, load_tsv, save_tsv


@pytest.fixture
def hotels_tsv(tmp_path):
    path = str(tmp_path / "hotels.tsv")
    save_tsv(path, figure1_hotels())
    return path


@pytest.fixture
def engine_dir(tmp_path, hotels_tsv):
    target = str(tmp_path / "engine")
    code = main(
        ["build", "--data", hotels_tsv, "--out", target,
         "--index", "ir2", "--signature-bytes", "8"]
    )
    assert code == 0
    return target


class TestGenerate:
    def test_writes_tsv(self, tmp_path, capsys):
        out = str(tmp_path / "data.tsv")
        code = main(
            ["generate", "--dataset", "restaurants", "--scale", "0.0005",
             "--out", out]
        )
        assert code == 0
        objects = load_tsv(out)
        assert len(objects) == 228
        assert "wrote 228" in capsys.readouterr().out

    def test_deterministic_seed(self, tmp_path):
        a = str(tmp_path / "a.tsv")
        b = str(tmp_path / "b.tsv")
        main(["generate", "--scale", "0.0002", "--seed", "5", "--out", a])
        main(["generate", "--scale", "0.0002", "--seed", "5", "--out", b])
        assert open(a).read() == open(b).read()


class TestBuild:
    def test_build_reports_size(self, engine_dir, capsys):
        # engine_dir fixture already ran the command; do a fresh one to
        # capture its output.
        pass

    @pytest.mark.parametrize("kind", ["rtree", "iio", "ir2", "mir2"])
    def test_build_all_kinds(self, tmp_path, hotels_tsv, kind, capsys):
        target = str(tmp_path / f"engine-{kind}")
        code = main(
            ["build", "--data", hotels_tsv, "--out", target, "--index", kind,
             "--signature-bytes", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "indexed 8 objects" in out
        assert kind.upper() in out

    def test_insert_build_flag(self, tmp_path, hotels_tsv):
        target = str(tmp_path / "engine-insert")
        code = main(
            ["build", "--data", hotels_tsv, "--out", target, "--insert-build"]
        )
        assert code == 0

    def test_missing_data_file_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["build", "--data", str(tmp_path / "none.tsv"),
             "--out", str(tmp_path / "e")]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_paper_query(self, engine_dir, capsys):
        code = main(
            ["query", "--engine", engine_dir, "--point", "30.5", "100.0",
             "--keywords", "internet", "pool", "-k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("  1. #7")
        assert lines[1].startswith("  2. #2")
        assert "block accesses" in out

    def test_ranked_query(self, engine_dir, capsys):
        code = main(
            ["query", "--engine", engine_dir, "--point", "30.5", "100.0",
             "--keywords", "internet", "pool", "-k", "3", "--ranked"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "score=" in out
        assert "ir=" in out

    def test_no_results(self, engine_dir, capsys):
        code = main(
            ["query", "--engine", engine_dir, "--point", "0", "0",
             "--keywords", "nonexistentword"]
        )
        assert code == 0
        assert "no results" in capsys.readouterr().out

    def test_missing_engine_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["query", "--engine", str(tmp_path / "none"), "--point", "0", "0",
             "--keywords", "pool"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestStats:
    def test_stats_output(self, engine_dir, capsys):
        code = main(["stats", "--engine", engine_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "objects             : 8" in out
        assert "index kind          : IR2" in out


class TestServe:
    def test_serve_smoke(self, engine_dir, tmp_path, capsys):
        """``python -m repro serve --serve-trace`` end to end."""
        trace_path = str(tmp_path / "trace.json")
        code = main(
            ["serve", "--engine", engine_dir, "--queries", "12",
             "--workers", "2", "--seed", "3", "--serve-trace", trace_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served 12 queries with 2 workers" in out
        assert "cache hits" in out

        import json

        payload = json.loads(open(trace_path).read())
        assert payload["service"]["queries"] == 12
        assert len(payload["spans"]) == 12
        for span in payload["spans"]:
            assert span["cache"] in ("hit", "miss")
            assert span["queue_wait_ms"] >= 0.0
            assert span["search_ms"] >= 0.0
            for key in ("random_reads", "sequential_reads", "objects_loaded"):
                assert isinstance(span[key], int)

    def test_serve_no_cache(self, engine_dir, capsys):
        code = main(
            ["serve", "--engine", engine_dir, "--queries", "6",
             "--workers", "2", "--no-cache"]
        )
        assert code == 0
        assert "0 cache hits" in capsys.readouterr().out

    def test_serve_missing_engine_fails_cleanly(self, tmp_path, capsys):
        code = main(["serve", "--engine", str(tmp_path / "none")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_index(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["build", "--data", "x", "--out", "y", "--index", "btree"]
            )


class TestVerify:
    def test_intact_engine_verifies_clean(self, engine_dir, capsys):
        assert main(["verify", engine_dir]) == 0
        out = capsys.readouterr().out
        assert "manifest.json" in out
        assert "engine loads" in out
        assert out.strip().endswith(": ok")

    def test_corrupt_engine_fails_with_nonzero_exit(self, engine_dir, capsys):
        import os

        with open(os.path.join(engine_dir, "objects.dat"), "ab") as handle:
            handle.write(b"x")
        assert main(["verify", engine_dir]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out
        assert "error" in out

    def test_json_report(self, engine_dir, capsys):
        import json

        assert main(["verify", "--json", engine_dir]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert any(c["path"] == "manifest.json" for c in report["checks"])

    def test_no_load_skips_the_load_check(self, engine_dir, capsys):
        assert main(["verify", "--no-load", engine_dir]) == 0
        assert "engine loads" not in capsys.readouterr().out

    def test_missing_directory_fails_cleanly(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path / "nope")]) == 1
        assert "CORRUPT" in capsys.readouterr().out
