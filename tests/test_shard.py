"""Sharded scatter-gather engine: partitioners, merge, and equivalence.

The sharding acceptance oracle mirrors the cross-index differential
harness: a :class:`~repro.shard.ShardedEngine` must answer every query
*tie-aware equivalently* to a single engine over the same corpus — same
result count, same distance multiset, identical strict prefix below the
k-th distance — for every index kind and shard count, plus aggregate its
per-shard cost breakdown consistently.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.engine import SpatialKeywordEngine
from repro.core.query import SpatialKeywordQuery
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.errors import DatasetError, DeviceFaultError, IndexError_, QueryError
from repro.model import SearchResult, SpatialObject
from repro.persist import MANIFEST_VERSION, load_engine, save_engine
from repro.shard import (
    PARTIAL,
    GridPartitioner,
    KDPartitioner,
    ShardedEngine,
    TopKMerger,
    make_partitioner,
    partitioner_from_dict,
)
from repro.storage import inject_engine_faults
from repro.spatial.geometry import target_point_distance

EPS = 1e-9

KINDS = ("ir2", "mir2", "rtree", "iio", "sig")
SHARD_COUNTS = (1, 2, 5)


def corpus_objects(n_objects, seed, vocabulary=300, avg_words=8, clusters=5):
    config = DatasetConfig(
        name=f"shard-{n_objects}-{seed}",
        n_objects=n_objects,
        vocabulary_size=vocabulary,
        avg_unique_words=avg_words,
        clusters=clusters,
        seed=seed,
    )
    return SpatialTextDatasetGenerator(config).generate()


def assert_tie_equivalent(execution, objects, analyzer, query):
    """Tie-aware equivalence against the index-free oracle."""
    terms = analyzer.query_terms(query.keywords)
    matches = sorted(
        (target_point_distance(obj.point, query.target), obj.oid)
        for obj in objects
        if analyzer.contains_all(obj.text, terms)
    )
    expected_n = min(query.k, len(matches))
    expected_dists = [d for d, _ in matches[:expected_n]]
    true_distance = dict((oid, d) for d, oid in matches)
    kth = expected_dists[-1] if expected_n else 0.0
    expected_prefix = {oid for d, oid in matches[:expected_n] if d < kth - EPS}
    got = [(r.distance, r.obj.oid) for r in execution.results]
    assert len(got) == expected_n
    oids = [oid for _, oid in got]
    assert len(set(oids)) == len(oids), "duplicate results"
    for (distance, oid), expected in zip(got, expected_dists):
        assert distance == pytest.approx(expected, abs=EPS)
        assert oid in true_distance
        assert distance == pytest.approx(true_distance[oid], abs=EPS)
    prefix = {oid for d, oid in got if d < kth - EPS}
    assert prefix == expected_prefix, "pre-tie prefix differs"


# ---------------------------------------------------------------------------
# Partitioners
# ---------------------------------------------------------------------------


class TestPartitioners:
    @pytest.mark.parametrize("kind", ["kd", "grid"])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 7, 8])
    def test_covers_every_shard_and_stays_in_range(self, kind, n_shards):
        objects = corpus_objects(200, seed=3)
        points = [obj.point for obj in objects]
        part = make_partitioner(kind, n_shards)
        part.fit(points)
        assignments = [part.assign(p) for p in points]
        assert all(0 <= a < n_shards for a in assignments)
        if kind == "kd":
            # kd balances object counts, so every shard is populated.
            assert len(set(assignments)) == n_shards

    def test_kd_balance(self):
        points = [(float(i), float(i % 13)) for i in range(400)]
        part = KDPartitioner(8)
        part.fit(points)
        counts = [0] * 8
        for p in points:
            counts[part.assign(p)] += 1
        assert max(counts) - min(counts) <= len(points) // 4

    @pytest.mark.parametrize("kind", ["kd", "grid"])
    def test_dict_round_trip(self, kind):
        points = [obj.point for obj in corpus_objects(80, seed=5)]
        part = make_partitioner(kind, 6)
        part.fit(points)
        clone = partitioner_from_dict(json.loads(json.dumps(part.to_dict())))
        assert type(clone) is type(part)
        for p in points:
            assert clone.assign(p) == part.assign(p)

    def test_out_of_extent_points_still_land_somewhere(self):
        points = [(float(i), float(i)) for i in range(10)]
        for part in (KDPartitioner(4), GridPartitioner(4)):
            part.fit(points)
            for p in [(-100.0, -100.0), (100.0, 100.0), (0.0, 1e6)]:
                assert 0 <= part.assign(p) < 4

    def test_unfitted_raises(self):
        with pytest.raises(IndexError_):
            KDPartitioner(2).assign((0.0, 0.0))
        with pytest.raises(IndexError_):
            GridPartitioner(2).to_dict()

    def test_bad_configuration_raises(self):
        with pytest.raises(DatasetError):
            make_partitioner("voronoi", 4)
        with pytest.raises(DatasetError):
            KDPartitioner(0)
        with pytest.raises(DatasetError):
            partitioner_from_dict({"kind": "nope"})


class TestTopKMerger:
    def test_threshold_opens_then_tightens(self):
        merger = TopKMerger(2)
        assert merger.threshold() == float("inf")
        obj = lambda oid: SpatialObject(oid, (0.0, 0.0), "x")
        merger.offer(SearchResult(obj(1), 5.0))
        assert merger.threshold() == float("inf")
        merger.offer(SearchResult(obj(2), 3.0))
        assert merger.threshold() == 5.0
        merger.offer(SearchResult(obj(3), 1.0))
        assert merger.threshold() == 3.0
        assert [r.obj.oid for r in merger.results()] == [3, 2]

    def test_ties_keep_smallest_oids(self):
        merger = TopKMerger(2)
        obj = lambda oid: SpatialObject(oid, (0.0, 0.0), "x")
        for oid in (9, 4, 7, 2):
            merger.offer(SearchResult(obj(oid), 1.0))
        assert [r.obj.oid for r in merger.results()] == [2, 4]

    def test_exact_distance_oid_tie_on_full_heap_does_not_raise(self):
        # Regression: a full-entry heap comparison fell through to the
        # unorderable SearchResult payload on an exact (distance, oid)
        # tie and raised TypeError; only the key may be compared.
        merger = TopKMerger(1)
        obj = SpatialObject(5, (0.0, 0.0), "x")
        merger.offer(SearchResult(obj, 2.0))
        merger.offer(SearchResult(SpatialObject(5, (0.0, 0.0), "x"), 2.0))
        assert [r.obj.oid for r in merger.results()] == [5]

    def test_duplicate_offers_are_idempotent(self):
        # A shard retried after a transient fault re-offers everything it
        # already merged; duplicates must not occupy extra top-k slots.
        merger = TopKMerger(3)
        obj = lambda oid: SpatialObject(oid, (0.0, 0.0), "x")
        for oid, distance in ((1, 1.0), (2, 2.0)):
            merger.offer(SearchResult(obj(oid), distance))
        for oid, distance in ((1, 1.0), (2, 2.0), (3, 3.0)):
            merger.offer(SearchResult(obj(oid), distance))
        assert [r.obj.oid for r in merger.results()] == [1, 2, 3]
        assert merger.threshold() == 3.0

    def test_eviction_forgets_the_evicted_oid(self):
        merger = TopKMerger(1)
        obj = lambda oid: SpatialObject(oid, (0.0, 0.0), "x")
        merger.offer(SearchResult(obj(9), 5.0))
        merger.offer(SearchResult(obj(1), 1.0))  # evicts 9
        merger.offer(SearchResult(obj(9), 0.5))  # 9 may re-enter
        assert [r.obj.oid for r in merger.results()] == [9]


# ---------------------------------------------------------------------------
# Sharded vs single equivalence (the acceptance harness)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def shard_corpus():
    return corpus_objects(150, seed=11)


def build_sharded(objects, kind, n_shards, **kwargs):
    engine = ShardedEngine(n_shards=n_shards, index=kind,
                           signature_bytes=4, **kwargs)
    engine.add_all(objects)
    engine.build()
    return engine


class TestShardedEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_point_queries_match_oracle(self, shard_corpus, kind, n_shards):
        objects = shard_corpus
        with build_sharded(objects, kind, n_shards) as sharded:
            analyzer = sharded.analyzer
            terms = sorted(sharded._global_vocabulary().terms())
            for point, keywords, k in [
                ((50.0, 50.0), [terms[0]], 5),
                ((10.0, 90.0), [terms[1], terms[2]], 3),
                ((0.0, 0.0), ["zzznope"], 5),
            ]:
                query = SpatialKeywordQuery.of(point, keywords, k)
                assert_tie_equivalent(
                    sharded.search(query), objects, analyzer, query
                )

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_matches_single_engine_answers(self, shard_corpus, n_shards):
        objects = shard_corpus
        single = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        single.add_all(objects)
        single.build()
        with build_sharded(objects, "ir2", n_shards) as sharded:
            workload_terms = sorted(single.corpus.vocabulary.terms())[:6]
            for term in workload_terms:
                ref = single.query((40.0, 60.0), [term], k=7)
                got = sharded.search(ref.query)
                ref_pairs = sorted((r.distance, r.obj.oid) for r in ref.results)
                got_pairs = [(r.distance, r.obj.oid) for r in got.results]
                assert [d for d, _ in got_pairs] == pytest.approx(
                    [d for d, _ in ref_pairs], abs=EPS
                )

    def test_area_query_equivalence(self, shard_corpus):
        objects = shard_corpus
        single = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        single.add_all(objects)
        single.build()
        term = sorted(single.corpus.vocabulary.terms())[0]
        ref = single.query_area((20.0, 20.0), (60.0, 60.0), [term], k=8)
        with build_sharded(objects, "ir2", 4) as sharded:
            got = sharded.query_area((20.0, 20.0), (60.0, 60.0), [term], k=8)
            assert sorted(r.distance for r in got.results) == pytest.approx(
                sorted(r.distance for r in ref.results), abs=EPS
            )
            assert_tie_equivalent(got, objects, sharded.analyzer, ref.query)

    def test_ranked_scores_equal_single_engine(self, shard_corpus):
        objects = shard_corpus
        single = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        single.add_all(objects)
        single.build()
        term = sorted(single.corpus.vocabulary.terms())[0]
        ref = single.query_ranked((50.0, 50.0), [term], k=6)
        with build_sharded(objects, "ir2", 3) as sharded:
            got = sharded.query_ranked((50.0, 50.0), [term], k=6)
            # Global idf merging makes sharded scores *equal*, not merely close.
            assert [round(r.score, 9) for r in got.results] == [
                round(r.score, 9) for r in ref.results
            ]

    def test_incremental_stream_is_globally_sorted(self, shard_corpus):
        objects = shard_corpus
        single = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        single.add_all(objects)
        single.build()
        term = sorted(single.corpus.vocabulary.terms())[0]
        ref = [r.distance for r in single.query_incremental((50.0, 50.0), [term])]
        with build_sharded(objects, "ir2", 4) as sharded:
            got = [
                r.distance
                for r in sharded.query_incremental((50.0, 50.0), [term])
            ]
            assert got == sorted(got)
            assert got == pytest.approx(ref, abs=EPS)

    def test_more_shards_than_objects(self):
        objects = corpus_objects(4, seed=2)
        with build_sharded(objects, "ir2", 9) as sharded:
            query = SpatialKeywordQuery.of((50.0, 50.0), ["w1"], 3)
            assert_tie_equivalent(
                sharded.search(query), objects, sharded.analyzer, query
            )


class TestShardBreakdown:
    def test_breakdown_aggregates_to_totals(self, shard_corpus):
        with build_sharded(shard_corpus, "ir2", 4) as sharded:
            term = sorted(sharded._global_vocabulary().terms())[0]
            execution = sharded.query((50.0, 50.0), [term], k=5)
            assert execution.shards is not None
            assert len(execution.shards) == 4
            live = [r for r in execution.shards if not r["pruned"]]
            assert sum(r["objects_inspected"] for r in live) == (
                execution.objects_inspected
            )
            assert sum(r["nodes_visited"] for r in live) == (
                execution.nodes_visited
            )
            assert execution.algorithm == "SHARDED-IR2x4"
            payload = execution.to_dict()
            json.dumps(payload)
            assert payload["shards"] == execution.shards

    def test_distant_shards_get_pruned(self):
        # Two tight clusters far apart: querying inside one cluster with
        # k smaller than the cluster population must prune the other side.
        objects = [
            SpatialObject(i, (float(i % 10), float(i // 10)), "cafe")
            for i in range(100)
        ]
        objects += [
            SpatialObject(1000 + i, (1e6 + i % 10, 1e6 + i // 10), "cafe")
            for i in range(100)
        ]
        engine = ShardedEngine(n_shards=2, index="ir2")
        engine.add_all(objects)
        engine.build()
        with engine:
            execution = engine.query((5.0, 5.0), ["cafe"], k=5)
            assert any(r["pruned"] for r in execution.shards)
            assert all(oid < 1000 for oid in execution.oids)


class TestShardedMutationAndLifecycle:
    def test_live_insert_routes_to_owning_shard(self, shard_corpus):
        with build_sharded(shard_corpus, "ir2", 4) as sharded:
            sharded.add_object(5000, (50.0, 50.0), "uniqueword spa")
            owner = sharded.shard_of(5000)
            assert owner is not None
            assert any(
                obj.oid == 5000 for obj in sharded.shards[owner].objects()
            )
            assert owner == sharded.partitioner.assign((50.0, 50.0))
            assert sharded.delete(5000) is True
            assert sharded.shard_of(5000) is None
            assert sharded.delete(5000) is False

    def test_duplicate_oid_rejected(self, shard_corpus):
        with build_sharded(shard_corpus, "ir2", 2) as sharded:
            with pytest.raises(QueryError):
                sharded.add_object(0, (1.0, 1.0), "dup")

    def test_unbuilt_engine_raises(self):
        engine = ShardedEngine(n_shards=2, index="ir2")
        engine.add_object(1, (0.0, 0.0), "cafe")
        with pytest.raises(IndexError_):
            engine.query((0.0, 0.0), ["cafe"], k=1)
        with pytest.raises(IndexError_):
            engine.delete(1)

    def test_len_and_stats_aggregate(self, shard_corpus):
        single = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        single.add_all(shard_corpus)
        single.build()
        with build_sharded(shard_corpus, "ir2", 3) as sharded:
            assert len(sharded) == len(single)
            s_stats = sharded.corpus_stats()
            r_stats = single.corpus_stats()
            assert s_stats.total_objects == r_stats.total_objects
            assert s_stats.unique_words == r_stats.unique_words
            assert s_stats.avg_unique_words_per_object == pytest.approx(
                r_stats.avg_unique_words_per_object
            )
            assert sharded.index_size_mb() > 0


class TestShardedPersistence:
    @pytest.mark.parametrize("kind", ["ir2", "iio"])
    def test_save_load_round_trip(self, tmp_path, shard_corpus, kind):
        directory = str(tmp_path / "engine")
        with build_sharded(shard_corpus, kind, 3) as sharded:
            term = sorted(sharded._global_vocabulary().terms())[0]
            ref = sharded.query((50.0, 50.0), [term], k=6)
            save_engine(sharded, directory)
        manifest = json.load(open(os.path.join(directory, "manifest.json")))
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["sharded"] is True
        assert manifest["n_shards"] == 3
        for name in manifest["shards"]:
            assert os.path.isdir(os.path.join(directory, name))
        reloaded = load_engine(directory)
        assert isinstance(reloaded, ShardedEngine)
        with reloaded:
            got = reloaded.query((50.0, 50.0), [term], k=6)
            assert got.oids == ref.oids
            # The reopened engine remains fully live.
            reloaded.add_object(7777, (50.0, 50.0), term)
            assert reloaded.query((50.0, 50.0), [term], k=1).oids == [7777]

    def test_single_engine_layout_still_loads(self, tmp_path, shard_corpus):
        directory = str(tmp_path / "single")
        single = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        single.add_all(shard_corpus)
        single.build()
        save_engine(single, directory)
        reloaded = load_engine(directory)
        assert isinstance(reloaded, SpatialKeywordEngine)


class TestShardedServing:
    def test_query_service_batch_matches_serial(self, shard_corpus):
        with build_sharded(shard_corpus, "ir2", 3) as sharded:
            terms = sorted(sharded._global_vocabulary().terms())[:4]
            queries = [
                SpatialKeywordQuery.of((30.0 + i, 40.0), [term], 5)
                for i, term in enumerate(terms)
            ]
            serial = [sharded.search(q).oids for q in queries]
            with sharded.serve(workers=3) as service:
                batch = service.run_batch(queries)
            assert [e.oids for e in batch] == serial


class TestDegradation:
    """Per-shard failure policies under injected storage faults."""

    def common_term(self, sharded):
        return sorted(sharded._global_vocabulary().terms())[0]

    def break_shard(self, sharded, shard_id, **plan_kwargs):
        return inject_engine_faults(sharded.shards[shard_id], **plan_kwargs)

    def test_fail_fast_reraises_the_shard_error(self, shard_corpus):
        with build_sharded(shard_corpus, "ir2", 3) as sharded:
            term = self.common_term(sharded)
            self.break_shard(sharded, 0, read_error_rate=1.0)
            self.break_shard(sharded, 1, read_error_rate=1.0)
            self.break_shard(sharded, 2, read_error_rate=1.0)
            with pytest.raises(DeviceFaultError):
                sharded.query((50.0, 50.0), [term], k=8)

    def test_partial_policy_answers_from_surviving_shards(self, shard_corpus):
        with build_sharded(shard_corpus, "ir2", 3) as healthy:
            term = self.common_term(healthy)
            full = healthy.query((50.0, 50.0), [term], k=8)
        with build_sharded(
            shard_corpus, "ir2", 3, failure_policy=PARTIAL
        ) as sharded:
            broken = 1
            self.break_shard(sharded, broken, read_error_rate=1.0)
            execution = sharded.query((50.0, 50.0), [term], k=8)
            assert execution.degraded
            assert execution.failed_shards == [broken]
            # Nothing from the broken shard, and every full-answer member
            # owned by a healthy shard still present — the answer is the
            # true top-k over the surviving shards, never garbage.
            assert all(sharded.shard_of(oid) != broken for oid in execution.oids)
            survivors = {
                oid for oid in full.oids if sharded.shard_of(oid) != broken
            }
            assert survivors <= set(execution.oids)
            report = [r for r in execution.shards if r["shard"] == broken][0]
            assert report["failed"] and "DeviceFaultError" in report["error"]
            assert "DEGRADED" in execution.summary()
            payload = execution.to_dict()
            assert payload["degraded"] is True
            assert payload["failed_shards"] == [broken]

    def test_partial_policy_for_ranked_queries(self, shard_corpus):
        with build_sharded(
            shard_corpus, "ir2", 3, failure_policy=PARTIAL
        ) as sharded:
            term = self.common_term(sharded)
            self.break_shard(sharded, 2, read_error_rate=1.0)
            execution = sharded.query_ranked((50.0, 50.0), [term], k=8)
            assert execution.degraded
            assert execution.failed_shards == [2]
            assert all(sharded.shard_of(oid) != 2 for oid in execution.oids)

    def test_transient_fault_is_retried_to_a_full_answer(self, shard_corpus):
        with build_sharded(shard_corpus, "ir2", 3) as healthy:
            term = self.common_term(healthy)
            full = healthy.query((50.0, 50.0), [term], k=8)
        with build_sharded(
            shard_corpus, "ir2", 3, retry_backoff_s=0.0
        ) as sharded:
            # Every shard's first block access fails once, transiently
            # (some shards may prune themselves and never read at all).
            plans = [
                self.break_shard(sharded, i, fail_read_at=(0,), transient=True)
                for i in range(3)
            ]
            execution = sharded.query((50.0, 50.0), [term], k=8)
            assert not execution.degraded
            assert execution.oids == full.oids
            assert sum(p.failures_injected for p in plans) >= 1

    def test_bad_failure_policy_rejected(self):
        with pytest.raises(QueryError, match="failure_policy"):
            ShardedEngine(n_shards=2, failure_policy="shrug")
