"""Concurrent-maintenance stress: readers race a live writer (PR-8 §4).

Every index kind × shard layout runs a reader pool against a writer that
streams inserts and deletes through the snapshot maintainer.  Three
properties must hold under the race:

1. **Version linearizability** — every answer is byte-identical to the
   brute-force oracle evaluated over the object set of *some* published
   version, namely the one the execution says it pinned
   (``execution.engine_version``).  Merge publications change the
   version number but never the content, so each answer is checked
   against the newest *write*-published content at or below its pin.
2. **Exact I/O attribution** — the service's lifetime I/O aggregate
   equals the element-wise merge of the per-execution deltas: concurrent
   background merges (which do real build I/O on their own devices) must
   never leak into a query's attribution.
3. **Readers never block on a merge** — a merge parked mid-fold cannot
   delay a search (covered per-kind here with a held-open merge hook; the
   non-stress variant lives in ``test_maintenance.py``).
"""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import SpatialKeywordEngine
from repro.core.query import SpatialKeywordQuery
from repro.core.search import brute_force_top_k
from repro.model import SpatialObject
from repro.serve import QueryService
from repro.shard import ShardedEngine
from repro.spatial.geometry import Rect
from repro.storage.iostats import IOStats
from repro.text.analyzer import Analyzer

KINDS = ("ir2", "mir2", "rtree", "iio", "sig")
SHARD_LAYOUTS = (1, 2, 5)

TEXTS = ("cafe wifi", "cafe garden", "museum wifi", "pool garden",
         "cafe museum", "wifi pool", "cafe pool garden")

N_OBJECTS = 42
N_WRITES = 18
N_READERS = 2
QUERIES_PER_READER = 8


def make_objects(n: int, start: int = 0) -> list[SpatialObject]:
    return [
        SpatialObject(
            start + i,
            (float((start + i) % 9), float((start + i) % 6)),
            TEXTS[(start + i) % len(TEXTS)],
        )
        for i in range(n)
    ]


def build_engine(kind: str, shards: int):
    if shards == 1:
        engine = SpatialKeywordEngine(index=kind, signature_bytes=4)
    else:
        engine = ShardedEngine(n_shards=shards, index=kind, signature_bytes=4)
    engine.add_all(make_objects(N_OBJECTS))
    engine.build()
    return engine


QUERY_POOL = [
    SpatialKeywordQuery.of((0.0, 0.0), ("cafe",), 3),
    SpatialKeywordQuery.of((4.0, 3.0), ("wifi",), 4),
    SpatialKeywordQuery.of((8.0, 5.0), ("garden",), 3),
    SpatialKeywordQuery.of((2.0, 2.0), ("pool",), 5),
    SpatialKeywordQuery.of((5.0, 1.0), ("cafe", "garden"), 2),
    SpatialKeywordQuery.of_area(Rect((0.0, 0.0), (5.0, 5.0)), ("wifi",), 4),
]


class OracleJournal:
    """Version → live-object-set map, recorded as the writer publishes.

    The writer records the exact version each of its mutations published
    (the maintainer returns it), so content is known precisely at those
    versions.  Versions *between* recorded ones were published by merges,
    which fold the buffer without changing the live set — their content
    is the newest recorded entry at or below them.
    """

    def __init__(self, initial_objects):
        self._lock = threading.Lock()
        self._by_version = {0: dict(initial_objects)}

    def record(self, version: int, objects: dict) -> None:
        with self._lock:
            self._by_version[version] = dict(objects)

    def content_at(self, version: int) -> list:
        with self._lock:
            recorded = max(v for v in self._by_version if v <= version)
            return list(self._by_version[recorded].values())


@pytest.mark.parametrize("shards", SHARD_LAYOUTS)
@pytest.mark.parametrize("kind", KINDS)
def test_readers_race_a_live_writer(kind, shards):
    engine = build_engine(kind, shards)
    analyzer = Analyzer()
    with engine if shards > 1 else _noop_ctx(engine), QueryService(
        engine, workers=N_READERS + 1, merge_threshold=6
    ) as service:
        maintainer = service.maintainer
        live = {obj.oid: obj for obj in make_objects(N_OBJECTS)}
        journal = OracleJournal(live)
        answers = []
        answers_lock = threading.Lock()
        errors = []

        def writer():
            try:
                next_oid = N_OBJECTS
                for i in range(N_WRITES):
                    if i % 3 == 2 and live:
                        victim = sorted(live)[i % len(live)]
                        version = maintainer.delete(victim)
                        assert version is not None
                        del live[victim]
                        journal.record(version.version, live)
                    else:
                        obj = SpatialObject(
                            next_oid,
                            (float(i % 9), float(i % 6)),
                            TEXTS[i % len(TEXTS)],
                        )
                        next_oid += 1
                        version = maintainer.add(obj)
                        live[obj.oid] = obj
                        journal.record(version.version, live)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def reader():
            try:
                for i in range(QUERIES_PER_READER):
                    query = QUERY_POOL[i % len(QUERY_POOL)]
                    execution = service.search(query)
                    with answers_lock:
                        answers.append((query, execution))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader) for _ in range(N_READERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert not errors, errors

        # 1. Every answer equals the oracle of the version it pinned.
        for query, execution in answers:
            version = execution.engine_version
            assert version is not None
            oracle = brute_force_top_k(
                journal.content_at(version), analyzer, query
            )
            assert execution.oids == [r.obj.oid for r in oracle], (
                kind, shards, version, query.keywords,
            )

        # 2. Per-query I/O attribution reconciles exactly with the
        # service aggregate despite concurrent merge I/O.
        merged = IOStats()
        for _query, execution in answers:
            merged = merged.merged_with(execution.io)
        total = service.stats().io
        assert total.random_reads == merged.random_reads
        assert total.sequential_reads == merged.sequential_reads
        assert total.objects_loaded == merged.objects_loaded
        assert total.shared_reads == merged.shared_reads

        # Fold the tail so the final base holds exactly the live set.
        final = maintainer.flush()
        assert not final.dirty
        assert sorted(o.oid for o in final.objects()) == sorted(live)


class _noop_ctx:
    def __init__(self, obj):
        self._obj = obj

    def __enter__(self):
        return self._obj

    def __exit__(self, *exc_info):
        return False


@pytest.mark.parametrize("kind", KINDS)
def test_no_reader_blocks_while_a_merge_is_parked(kind):
    engine = build_engine(kind, shards=1)
    with QueryService(engine, workers=2, merge_threshold=None) as service:
        maintainer = service.maintainer
        service.add_object(900, (1.0, 1.0), "cafe wifi stressterm")
        hold = threading.Event()
        entered = threading.Event()

        def stall():
            entered.set()
            assert hold.wait(15.0)

        maintainer.merge_hook = stall
        merge = threading.Thread(target=maintainer.flush, daemon=True)
        merge.start()
        assert entered.wait(15.0)
        try:
            finished = threading.Event()

            def read():
                execution = service.search(
                    SpatialKeywordQuery.of((1.0, 1.0), ("stressterm",), 1)
                )
                assert execution.oids == [900]
                finished.set()

            reader = threading.Thread(target=read, daemon=True)
            reader.start()
            # The merge is still parked on the hook; the reader must
            # answer long before it is released.
            assert finished.wait(10.0), "reader blocked behind a merge"
            assert not hold.is_set()
        finally:
            hold.set()
            merge.join(15.0)
        assert maintainer.merges == 1
