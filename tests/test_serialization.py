"""Unit and property tests for node serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.storage.serialization import (
    blocks_per_node,
    decode_node,
    encode_node,
    entry_size,
    node_byte_size,
    node_capacity,
)


class TestSizing:
    def test_paper_capacity_is_113(self):
        """4 KB blocks + 2-D, 36-byte entries => 113 children (Section VI)."""
        assert node_capacity(4096, dims=2) == 113

    def test_entry_size_2d(self):
        assert entry_size(2, 0) == 36
        assert entry_size(2, 189) == 225

    def test_entry_size_3d(self):
        assert entry_size(3, 0) == 52

    def test_plain_rtree_node_fits_one_block(self):
        assert blocks_per_node(4096, 113, 2, 0) == 1

    def test_restaurant_signatures_need_two_blocks(self):
        """113 entries x (36+8) bytes = ~5 KB => 2 blocks, as in the paper
        ("typically requires two disk blocks per node")."""
        assert blocks_per_node(4096, 113, 2, 8) == 2

    def test_hotels_signatures_need_more_blocks(self):
        assert blocks_per_node(4096, 113, 2, 189) > 2

    def test_node_byte_size(self):
        assert node_byte_size(113, 2, 0) == 16 + 113 * 36

    def test_tiny_block_rejected(self):
        with pytest.raises(SerializationError):
            node_capacity(50, dims=2)


class TestRoundTrip:
    def test_leaf_roundtrip(self):
        entries = [
            (17, (1.0, 2.0, 1.0, 2.0), b""),
            (42, (-5.5, 0.0, 3.25, 9.75), b""),
        ]
        image = encode_node(3, 0, True, 2, 0, entries)
        node_id, level, is_leaf, sig_len, decoded = decode_node(image, 2)
        assert (node_id, level, is_leaf, sig_len) == (3, 0, True, 0)
        assert decoded == entries

    def test_signature_roundtrip(self):
        sig = bytes(range(8))
        image = encode_node(1, 2, False, 2, 8, [(9, (0.0,) * 4, sig)])
        _, level, is_leaf, sig_len, decoded = decode_node(image, 2)
        assert level == 2 and not is_leaf and sig_len == 8
        assert decoded[0][2] == sig

    def test_empty_node(self):
        image = encode_node(0, 0, True, 2, 0, [])
        _, _, _, _, decoded = decode_node(image, 2)
        assert decoded == []

    def test_decode_rejects_bad_magic(self):
        image = bytearray(encode_node(0, 0, True, 2, 0, []))
        image[0] = ord("X")
        with pytest.raises(SerializationError):
            decode_node(bytes(image), 2)

    def test_decode_rejects_truncated_header(self):
        with pytest.raises(SerializationError):
            decode_node(b"RN", 2)

    def test_decode_rejects_truncated_entries(self):
        image = encode_node(0, 0, True, 2, 0, [(1, (0.0,) * 4, b"")])
        with pytest.raises(SerializationError):
            decode_node(image[:-4], 2)

    def test_encode_rejects_wrong_mbr_arity(self):
        with pytest.raises(SerializationError):
            encode_node(0, 0, True, 2, 0, [(1, (0.0, 0.0), b"")])

    def test_encode_rejects_wrong_signature_length(self):
        with pytest.raises(SerializationError):
            encode_node(0, 0, True, 2, 4, [(1, (0.0,) * 4, b"xx")])

    def test_encode_rejects_out_of_range_level(self):
        with pytest.raises(SerializationError):
            encode_node(0, 300, False, 2, 0, [])

    def test_encode_rejects_huge_child_ref(self):
        with pytest.raises(SerializationError):
            encode_node(0, 0, True, 2, 0, [(2**33, (0.0,) * 4, b"")])


@given(
    dims=st.integers(1, 4),
    sig_len=st.sampled_from([0, 1, 8, 21]),
    level=st.integers(0, 5),
    entries=st.lists(
        st.tuples(
            st.integers(0, 2**32 - 1),
            st.lists(
                st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=8
            ),
        ),
        max_size=20,
    ),
)
@settings(max_examples=80, deadline=None)
def test_property_roundtrip(dims, sig_len, level, entries):
    """encode -> decode is the identity for arbitrary well-formed nodes."""
    shaped = []
    for ref, coords in entries:
        mbr = tuple((coords * ((2 * dims) // len(coords) + 1))[: 2 * dims])
        shaped.append((ref, mbr, bytes(sig_len)))
    image = encode_node(7, level, level == 0, dims, sig_len, shaped)
    node_id, got_level, is_leaf, got_sig_len, decoded = decode_node(image, dims)
    assert node_id == 7
    assert got_level == level
    assert is_leaf == (level == 0)
    assert got_sig_len == sig_len
    assert decoded == shaped
