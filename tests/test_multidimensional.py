"""End-to-end tests in three dimensions.

Section I: the method "can be applied to arbitrarily-shaped and
multi-dimensional objects and not just points on the two dimensions".
These tests run the whole stack — generator, engine, every index kind,
area queries — on 3-D data against the brute-force oracle.
"""

from __future__ import annotations

import random

import pytest

from repro import SpatialKeywordEngine
from repro.core import SpatialKeywordQuery, brute_force_top_k
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.spatial import Rect

EXTENT_3D = ((0.0, 100.0), (0.0, 100.0), (0.0, 50.0))


@pytest.fixture(scope="module")
def objects_3d():
    config = DatasetConfig(
        name="warehouse",  # e.g. items at (x, y, shelf-height)
        n_objects=250,
        vocabulary_size=300,
        avg_unique_words=8,
        clusters=5,
        extent=EXTENT_3D,
        seed=77,
    )
    return SpatialTextDatasetGenerator(config).generate()


def queries_3d(corpus, objects, count, seed=0, k=5):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        anchor = rng.choice(objects)
        terms = sorted(corpus.analyzer.terms(anchor.text))
        keywords = rng.sample(terms, min(2, len(terms)))
        point = tuple(rng.uniform(lo, hi) for lo, hi in EXTENT_3D)
        out.append(SpatialKeywordQuery.of(point, keywords, k))
    return out


class TestGenerator3D:
    def test_points_have_three_coordinates(self, objects_3d):
        assert all(obj.dims == 3 for obj in objects_3d)

    def test_points_within_extent(self, objects_3d):
        for obj in objects_3d:
            for c, (lo, hi) in zip(obj.point, EXTENT_3D):
                assert lo <= c <= hi

    def test_config_dims(self):
        config = DatasetConfig(
            name="x", n_objects=1, vocabulary_size=10, avg_unique_words=2,
            extent=EXTENT_3D,
        )
        assert config.dims == 3

    def test_inverted_extent_rejected(self):
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            DatasetConfig(
                name="x", n_objects=1, vocabulary_size=10, avg_unique_words=2,
                extent=((1.0, 0.0),),
            )


@pytest.mark.parametrize("kind", ["rtree", "iio", "ir2", "mir2", "sig"])
class TestEngines3D:
    def test_agrees_with_oracle(self, kind, objects_3d):
        engine = SpatialKeywordEngine(index=kind, signature_bytes=8)
        engine.add_all(objects_3d)
        engine.build()
        for query in queries_3d(engine.corpus, objects_3d, 6, seed=1):
            expected = [
                r.oid
                for r in brute_force_top_k(
                    objects_3d, engine.corpus.analyzer, query
                )
            ]
            assert engine.index.execute(query).oids == expected


class TestExtras3D:
    def test_area_query_in_3d(self, objects_3d):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        engine.add_all(objects_3d)
        engine.build()
        anchor = objects_3d[0]
        keyword = sorted(engine.corpus.analyzer.terms(anchor.text))[0]
        area = Rect((10.0, 10.0, 0.0), (90.0, 90.0, 50.0))
        query = SpatialKeywordQuery.of_area(area, [keyword], 5)
        got = engine.index.execute(query)
        # Many matches sit *inside* the area at distance 0, so the order
        # among those ties is arbitrary: compare distance profiles and
        # check each answer is a legitimate tie choice.
        full_query = SpatialKeywordQuery.of_area(area, [keyword], len(objects_3d))
        full = brute_force_top_k(objects_3d, engine.corpus.analyzer, full_query)
        got_distances = [round(r.distance, 9) for r in got.results]
        assert got_distances == [round(r.distance, 9) for r in full[:5]]
        eligible = {
            round(r.distance, 9): set() for r in full
        }
        for r in full:
            eligible[round(r.distance, 9)].add(r.oid)
        for r in got.results:
            assert r.oid in eligible[round(r.distance, 9)]

    def test_capacity_derived_for_3d_nodes(self, objects_3d):
        """3-D entries are 52 bytes, so a 4 KB block holds 78 of them."""
        engine = SpatialKeywordEngine(index="rtree")
        engine.add_all(objects_3d)
        engine.build()
        assert engine.index.tree.capacity == (4096 - 16) // 52

    def test_persistence_in_3d(self, objects_3d, tmp_path):
        from repro.persist import load_engine, save_engine

        engine = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        engine.add_all(objects_3d)
        engine.build()
        save_engine(engine, str(tmp_path / "3d"))
        reloaded = load_engine(str(tmp_path / "3d"))
        query = queries_3d(engine.corpus, objects_3d, 1, seed=2)[0]
        assert reloaded.index.execute(query).oids == engine.index.execute(query).oids
