"""Concurrency tests for the :mod:`repro.serve` query service."""

from __future__ import annotations

import threading

import pytest

from repro.bench.workloads import ConcurrentLoadGenerator, WorkloadGenerator
from repro.core.engine import SpatialKeywordEngine
from repro.errors import ServiceError
from repro.serve import QueryService, ReadWriteLock, TraceSpan
from repro.serve.resultcache import QueryResultCache
from repro.core.query import SpatialKeywordQuery


@pytest.fixture
def engine(small_objects) -> SpatialKeywordEngine:
    eng = SpatialKeywordEngine(index="ir2", signature_bytes=8)
    eng.add_all(small_objects)
    eng.build()
    return eng


@pytest.fixture
def workload(small_objects, engine) -> WorkloadGenerator:
    return WorkloadGenerator(small_objects, engine.corpus.analyzer, seed=17)


def search(service, point, keywords, k=10):
    """Synchronous point query through the redesigned submission API."""
    return service.search(SpatialKeywordQuery.of(point, keywords, k))


class TestConcurrentCorrectness:
    def test_parallel_equals_serial(self, engine, workload):
        """8 workers x 64 queries: results identical to serial execution."""
        queries = workload.queries(64, num_keywords=2, k=10)
        serial = [engine.query(q.point, q.keywords, k=q.k) for q in queries]
        with QueryService(engine, workers=8, cache=False) as service:
            parallel = service.run_batch(queries)
        for s, p in zip(serial, parallel):
            assert p.oids == s.oids
            assert [r.distance for r in p.results] == [
                r.distance for r in s.results
            ]

    def test_per_query_io_sums_to_device_totals(self, engine, workload):
        """Isolated per-execution deltas add up to the global counters."""
        queries = workload.queries(48, num_keywords=2, k=5)
        engine.reset_io()
        with QueryService(engine, workers=8, cache=False) as service:
            executions = service.run_batch(queries)
        totals = engine.io_stats()
        assert sum(e.io.total_reads for e in executions) == totals.total_reads
        assert sum(e.io.random_reads for e in executions) == totals.random_reads
        assert (
            sum(e.io.sequential_reads for e in executions)
            == totals.sequential_reads
        )
        assert (
            sum(e.io.objects_loaded for e in executions) == totals.objects_loaded
        )
        # The service's aggregate view agrees too.
        stats = service.stats()
        assert stats.io.total_reads == totals.total_reads
        assert stats.queries == len(queries)

    def test_mixed_hot_cold_batch_with_cache(self, engine, workload):
        """A cache-enabled concurrent batch still matches serial answers."""
        generator = ConcurrentLoadGenerator(
            workload.objects, engine.corpus.analyzer, seed=3
        )
        batch = generator.batch(64, num_keywords=2, k=5, hot_fraction=0.6)
        serial = {id(q): engine.query(q.point, q.keywords, k=q.k) for q in batch}
        with QueryService(engine, workers=8, cache=True) as service:
            parallel = service.run_batch(batch)
        for query, execution in zip(batch, parallel):
            assert execution.oids == serial[id(query)].oids
        stats = service.stats()
        assert stats.queries == 64
        assert stats.cache_hits + stats.cache_misses == 64
        assert stats.cache_hits > 0  # hot repeats must hit


class TestTracing:
    def test_every_execution_carries_a_populated_span(self, engine, workload):
        queries = workload.queries(16, num_keywords=2, k=5)
        with QueryService(engine, workers=4, cache=True) as service:
            executions = service.run_batch(queries)
        seen_ids = set()
        for execution in executions:
            span = execution.trace
            assert isinstance(span, TraceSpan)
            seen_ids.add(span.query_id)
            assert span.algorithm == "IR2"
            assert span.cache in ("hit", "miss")
            assert span.keywords == execution.query.keywords
            assert span.finished_at >= span.started_at >= span.submitted_at
            assert span.queue_wait_ms >= 0.0
            assert span.search_ms >= 0.0
            assert span.num_results == len(execution.results)
            if span.cache == "miss":
                assert span.random_reads == execution.io.random_reads > 0
            else:
                assert span.random_reads == 0
            assert span.worker.startswith("repro-query")
        assert len(seen_ids) == 16  # distinct, service-assigned ids
        assert len(service.trace_spans()) == 16

    def test_trace_export_round_trips(self, engine, workload, tmp_path):
        import json

        path = str(tmp_path / "trace.json")
        with QueryService(engine, workers=2) as service:
            service.run_batch(workload.queries(6, 2, 5))
            service.export_traces(path)
        payload = json.loads(open(path).read())
        assert payload["service"]["queries"] == 6
        assert len(payload["spans"]) == 6
        for row in payload["spans"]:
            for key in ("queue_wait_ms", "search_ms", "cache", "random_reads"):
                assert key in row

    def test_trace_log_capacity_drops_oldest(self, engine, workload):
        with QueryService(engine, workers=2, trace_capacity=4) as service:
            service.run_batch(workload.queries(10, 1, 3))
        assert len(service.trace_log) == 4
        assert service.trace_log.dropped == 6


class TestCacheSemantics:
    def test_repeat_query_hits_and_costs_nothing(self, engine):
        with QueryService(engine, workers=2, cache=True) as service:
            first = search(service, (0.5, 0.5), ["internet"], k=3)
            second = search(service, (0.5, 0.5), ["internet"], k=3)
        assert second.oids == first.oids
        assert first.trace.cache == "miss"
        assert second.trace.cache == "hit"
        assert second.io.total_accesses == 0
        assert second.objects_inspected == 0

    def test_add_object_and_rebuild_invalidate(self, engine, workload):
        """The satellite's scenario: cache flushed by add_object + build."""
        query = workload.query(num_keywords=1, k=5)
        point, keywords = query.point, list(query.keywords)
        with QueryService(engine, workers=2, cache=True) as service:
            before = search(service, point, keywords, k=5)
            assert search(service, point, keywords, k=5).trace.cache == "hit"
            generation = service.cache.generation
            # Insert an object right at the query point carrying the keyword.
            service.add_object(999_999, point, " ".join(keywords) + " new")
            service.build()  # full rebuild over the grown corpus
            assert service.cache.generation == generation + 2
            after = search(service, point, keywords, k=5)
            assert after.trace.cache == "miss"
            assert after.oids[0] == 999_999
            assert before.oids[0] != 999_999

    def test_delete_invalidates(self, engine, workload):
        query = workload.query(num_keywords=1, k=3)
        with QueryService(engine, workers=2, cache=True) as service:
            first = search(service, query.point, list(query.keywords), k=3)
            victim = first.oids[0]
            assert service.delete(victim) is True
            after = search(service, query.point, list(query.keywords), k=3)
            assert after.trace.cache == "miss"
            assert victim not in after.oids

    def test_mutating_a_miss_answer_cannot_corrupt_the_cache(
        self, engine, workload
    ):
        """Regression: the cache stores copies, not the caller's objects.

        The execution that populates the cache hands its results to the
        caller; scribbling over them must not change what later hits
        see.
        """
        query = workload.query(num_keywords=1, k=3)
        point, keywords = query.point, list(query.keywords)
        with QueryService(engine, workers=2, cache=True) as service:
            first = search(service, point, keywords, k=3)
            assert first.trace.cache == "miss"
            assert first.results, "workload query must have answers"
            original = [(r.distance, r.obj.oid, r.score) for r in first.results]
            for result in first.results:
                result.distance = -99.0
                result.score = -99.0
            first.results.clear()
            second = search(service, point, keywords, k=3)
        assert second.trace.cache == "hit"
        assert [
            (r.distance, r.obj.oid, r.score) for r in second.results
        ] == original

    def test_mutating_a_hit_answer_cannot_corrupt_the_cache(
        self, engine, workload
    ):
        """Regression: each cache hit returns per-hit result copies."""
        query = workload.query(num_keywords=1, k=3)
        point, keywords = query.point, list(query.keywords)
        with QueryService(engine, workers=2, cache=True) as service:
            first = search(service, point, keywords, k=3)
            assert first.results, "workload query must have answers"
            original = [(r.distance, r.obj.oid) for r in first.results]
            second = search(service, point, keywords, k=3)
            assert second.trace.cache == "hit"
            for result in second.results:
                result.distance = float("nan")
            second.results.pop()
            third = search(service, point, keywords, k=3)
        assert third.trace.cache == "hit"
        assert [(r.distance, r.obj.oid) for r in third.results] == original

    def test_distinct_k_are_distinct_entries(self, engine):
        with QueryService(engine, workers=2, cache=True) as service:
            search(service, (0.5, 0.5), ["internet"], k=2)
            third = search(service, (0.5, 0.5), ["internet"], k=3)
        assert third.trace.cache == "miss"

    def test_writes_interleaved_with_reads_stay_consistent(self, engine, workload):
        """Mutations and queries race; every answer must be internally sane."""
        queries = workload.queries(30, num_keywords=1, k=5)
        errors = []
        with QueryService(engine, workers=4, cache=True) as service:
            def mutate():
                try:
                    for i in range(10):
                        service.add_object(
                            1_000_000 + i, (0.1 * i, 0.1 * i), f"word{i} extra"
                        )
                except Exception as exc:  # pragma: no cover - fail loud
                    errors.append(exc)

            thread = threading.Thread(target=mutate)
            thread.start()
            executions = service.run_batch(queries)
            thread.join()
        assert not errors
        for execution in executions:
            distances = [r.distance for r in execution.results]
            assert distances == sorted(distances)


class TestLifecycle:
    def test_submit_after_close_raises(self, engine):
        service = QueryService(engine, workers=1)
        service.close()
        with pytest.raises(ServiceError):
            service.submit(SpatialKeywordQuery.of((0, 0), ["internet"], 5))

    def test_submit_racing_close_raises_service_error(self, engine):
        # Simulate close() winning the race just after the _closed check:
        # the executor rejects the submit with RuntimeError, which must
        # surface as ServiceError, not leak through.
        service = QueryService(engine, workers=1)
        service._pool.shutdown(wait=True)
        with pytest.raises(ServiceError):
            service.submit(SpatialKeywordQuery.of((0, 0), ["internet"], 5))
        service.close()

    def test_engine_serve_convenience(self, engine):
        with engine.serve(workers=2, cache=False) as service:
            assert isinstance(service, QueryService)
            execution = search(service, (0.5, 0.5), ["internet"], k=1)
        assert execution.algorithm == "IR2"
        assert service.cache is None

    def test_workers_must_be_positive(self, engine):
        with pytest.raises(ServiceError):
            QueryService(engine, workers=0)

    def test_default_service_stats_has_real_io(self):
        from repro.serve.service import ServiceStats

        stats = ServiceStats()
        assert stats.io.random_reads == 0
        assert stats.as_dict()["random_reads"] == 0
        assert stats.summary().startswith("0 queries")

    def test_query_error_propagates_and_is_counted(self, engine, monkeypatch):
        with QueryService(engine, workers=1) as service:
            future = service.submit(
                SpatialKeywordQuery.of((0, 0), ["internet"], k=1)
            )
            future.result()

            def explode(query):
                raise RuntimeError("disk on fire")

            monkeypatch.setattr(engine.index, "execute", explode)
            with pytest.raises(RuntimeError, match="disk on fire"):
                search(service, (1, 1), ["internet"], k=1)
        stats = service.stats()
        assert stats.errors == 1
        failed = [s for s in service.trace_spans() if s.error]
        assert len(failed) == 1


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        state = {"readers": 0, "max_readers": 0, "writer_saw_readers": False}
        gate = threading.Barrier(4)

        def reader():
            gate.wait()
            with lock.read_locked():
                state["readers"] += 1
                state["max_readers"] = max(state["max_readers"], state["readers"])
                threading.Event().wait(0.02)
                state["readers"] -= 1

        def writer():
            gate.wait()
            with lock.write_locked():
                if state["readers"]:
                    state["writer_saw_readers"] = True

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert state["max_readers"] >= 2  # readers genuinely overlapped
        assert state["writer_saw_readers"] is False


class TestResultCacheUnit:
    def test_lru_eviction(self):
        cache = QueryResultCache(capacity=2)
        queries = [
            SpatialKeywordQuery.of((i, i), ["w"], k=1) for i in range(3)
        ]
        from repro.core.query import QueryExecution

        for q in queries:
            cache.put(q, QueryExecution(query=q, results=[]))
        assert len(cache) == 2
        assert queries[0] not in cache
        assert queries[2] in cache

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QueryResultCache(capacity=0)

    def test_hit_rate(self):
        cache = QueryResultCache(capacity=4)
        q = SpatialKeywordQuery.of((0, 0), ["w"], k=1)
        assert cache.get(q) is None
        from repro.core.query import QueryExecution

        cache.put(q, QueryExecution(query=q, results=[]))
        assert cache.get(q) is not None
        assert cache.hit_rate == 0.5


class TestFaultHandling:
    """Transient retries and degraded-execution semantics in the service."""

    def test_transient_engine_fault_is_retried_to_success(self, engine):
        from repro.errors import TransientDeviceError

        real_search = engine.search
        calls = []

        def flaky(query):
            calls.append(1)
            if len(calls) == 1:
                raise TransientDeviceError("blip")
            return real_search(query)

        engine.search = flaky
        with QueryService(engine, workers=2, retry_backoff_s=0.0) as service:
            execution = search(service, (0.0, 0.0), ["hotel"], k=3)
            assert len(calls) == 2
            assert service.stats().errors == 0
        reference = real_search(
            SpatialKeywordQuery.of((0.0, 0.0), ["hotel"], 3)
        )
        assert execution.oids == reference.oids

    def test_permanent_fault_surfaces_and_is_counted(self, engine):
        from repro.errors import DeviceFaultError

        def broken(query):
            raise DeviceFaultError("dead sector")

        engine.search = broken
        with QueryService(engine, workers=2, retry_backoff_s=0.0) as service:
            with pytest.raises(DeviceFaultError):
                search(service, (0.0, 0.0), ["hotel"], k=3)
            assert service.stats().errors == 1

    def degraded_setup(self, small_objects):
        from repro.shard import PARTIAL, ShardedEngine
        from repro.storage import inject_engine_faults

        sharded = ShardedEngine(
            n_shards=3, index="ir2", signature_bytes=8,
            failure_policy=PARTIAL,
        )
        sharded.add_all(small_objects)
        sharded.build()
        plans = [
            inject_engine_faults(shard, read_error_rate=1.0)
            for shard in sharded.shards
        ]
        return sharded, plans

    def test_degraded_execution_is_counted_and_never_cached(
        self, small_objects
    ):
        sharded, plans = self.degraded_setup(small_objects)
        term = sorted(sharded._global_vocabulary().terms())[0]
        with sharded, QueryService(sharded, workers=2) as service:
            degraded = search(service, (50.0, 50.0), [term], k=5)
            assert degraded.degraded
            stats = service.stats()
            assert stats.degraded == 1
            assert stats.cache_misses == 1
            # The fault clears; the same query must re-execute in full,
            # not replay the partial answer from the cache.
            for plan in plans:
                plan.disarm()
            healed = search(service, (50.0, 50.0), [term], k=5)
            assert not healed.degraded
            stats = service.stats()
            assert stats.cache_hits == 0 and stats.cache_misses == 2
            # The full answer *is* cacheable: third time is a hit.
            again = search(service, (50.0, 50.0), [term], k=5)
            assert again.oids == healed.oids
            assert service.stats().cache_hits == 1
            assert service.stats().degraded == 1
