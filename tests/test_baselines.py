"""Unit tests for the IIO baseline (paper Figure 7)."""

from __future__ import annotations

import random

import pytest

from repro.core import SpatialKeywordQuery, brute_force_top_k, iio_top_k
from repro.storage import InMemoryBlockDevice
from repro.text import InvertedIndex


@pytest.fixture
def index(small_corpus):
    idx = InvertedIndex(InMemoryBlockDevice(), small_corpus.analyzer)
    idx.build((ptr, obj.text) for ptr, obj in small_corpus.iter_items())
    return idx


def random_queries(corpus, objects, count, num_keywords, k, seed=0):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        obj = rng.choice(objects)
        terms = sorted(corpus.analyzer.terms(obj.text))
        keywords = rng.sample(terms, min(num_keywords, len(terms)))
        out.append(
            SpatialKeywordQuery.of(
                (rng.uniform(-90, 90), rng.uniform(-180, 180)), keywords, k
            )
        )
    return out


class TestIIOTopK:
    def test_matches_brute_force(self, small_corpus, small_objects, index):
        for query in random_queries(small_corpus, small_objects, 12, 2, 5):
            got = iio_top_k(index, small_corpus.store, query)
            want = brute_force_top_k(small_objects, small_corpus.analyzer, query)
            assert [r.oid for r in got.results] == [r.oid for r in want]

    def test_inspections_independent_of_k(self, small_corpus, small_objects, index):
        """IIO is non-incremental: it always materializes the whole
        intersection (Section V.A / the flat IIO lines of Figures 9, 12)."""
        base = random_queries(small_corpus, small_objects, 1, 1, 1, seed=2)[0]
        inspected = []
        for k in (1, 5, 50):
            query = SpatialKeywordQuery(base.point, base.keywords, k)
            outcome = iio_top_k(index, small_corpus.store, query)
            inspected.append(outcome.counters.objects_inspected)
        assert inspected[0] == inspected[1] == inspected[2]

    def test_no_matching_keyword(self, small_corpus, index):
        query = SpatialKeywordQuery.of((0, 0), ["nonexistentword"], 5)
        outcome = iio_top_k(index, small_corpus.store, query)
        assert outcome.results == []
        assert outcome.counters.objects_inspected == 0

    def test_results_sorted_by_distance(self, small_corpus, small_objects, index):
        query = random_queries(small_corpus, small_objects, 1, 1, 25, seed=3)[0]
        outcome = iio_top_k(index, small_corpus.store, query)
        distances = [r.distance for r in outcome.results]
        assert distances == sorted(distances)

    def test_io_profile_reads_postings_then_objects(self, small_corpus, small_objects, index):
        query = random_queries(small_corpus, small_objects, 1, 2, 5, seed=4)[0]
        index.device.stats.reset()
        small_corpus.device.stats.reset()
        outcome = iio_top_k(index, small_corpus.store, query)
        if outcome.counters.objects_inspected:
            assert index.device.stats.category_reads("postings") >= 1
            assert small_corpus.device.stats.objects_loaded == (
                outcome.counters.objects_inspected
            )
