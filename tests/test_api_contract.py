"""API contract: uniform errors, capability flags, and unified search().

Every engine flavor (all six index kinds, plus the sharded engine) must:

* raise :class:`~repro.errors.QueryError` — never ``AttributeError`` —
  when asked for a feature its index kind does not support;
* raise :class:`~repro.errors.IndexError_` when queried before build();
* report capabilities through
  :attr:`~repro.core.indexes.SpatialKeywordIndex.supports_incremental`;
* answer :meth:`search` identically to the legacy ``query`` /
  ``query_area`` / ``query_ranked`` convenience wrappers;
* produce a JSON-clean :meth:`~repro.core.query.QueryExecution.to_dict`.

:class:`TestServiceSubmissionSurface` pins the redesigned
:class:`~repro.serve.QueryService` submission API — ``submit(query)`` →
``Future``, ``submit_many(queries)`` → futures, ``search(query)``
synchronous — and the deprecation shims the old trio
(``submit(point, keywords, k)`` / ``submit_query`` / ``query`` /
``execute``) left behind.
"""

from __future__ import annotations

import json
from concurrent.futures import Future

import pytest

from repro.core.engine import SpatialKeywordEngine
from repro.core.query import QueryExecution, SpatialKeywordQuery
from repro.core.ranking import LinearRanking
from repro.errors import IndexError_, QueryError, ServiceError
from repro.model import SpatialObject
from repro.serve import QueryService
from repro.shard import ShardedEngine
from repro.spatial.geometry import Rect

ALL_KINDS = ("ir2", "mir2", "rtree", "iio", "sig", "stree")
INCREMENTAL_KINDS = ("ir2", "mir2", "rtree")
RANKED_KINDS = ("ir2", "mir2")

OBJECTS = [
    SpatialObject(1, (0.0, 0.0), "cafe wifi garden"),
    SpatialObject(2, (1.0, 1.0), "cafe pool"),
    SpatialObject(3, (2.0, 2.0), "museum wifi"),
    SpatialObject(4, (3.0, 3.0), "cafe museum garden"),
    SpatialObject(5, (4.0, 4.0), "pool garden"),
]


def built_engine(kind):
    engine = SpatialKeywordEngine(index=kind, signature_bytes=4)
    engine.add_all(OBJECTS)
    engine.build()
    return engine


@pytest.fixture(scope="module", params=ALL_KINDS)
def engine(request):
    return built_engine(request.param)


class TestCapabilityErrors:
    def test_supports_incremental_flag(self, engine):
        expected = engine.index_kind in INCREMENTAL_KINDS
        assert engine.index.supports_incremental is expected

    def test_unsupported_streaming_is_query_error(self, engine):
        if engine.index_kind in INCREMENTAL_KINDS:
            results = list(engine.query_incremental((0.0, 0.0), ["cafe"]))
            assert [r.obj.oid for r in results[:2]] == [1, 2]
        else:
            with pytest.raises(QueryError, match="incremental"):
                engine.query_incremental((0.0, 0.0), ["cafe"])

    def test_unsupported_ranking_is_query_error(self, engine):
        if engine.index_kind in RANKED_KINDS:
            execution = engine.query_ranked((0.0, 0.0), ["cafe"], k=2)
            assert len(execution.results) == 2
        else:
            with pytest.raises(QueryError, match="ranked"):
                engine.query_ranked((0.0, 0.0), ["cafe"], k=2)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_never_attribute_error(self, kind):
        engine = built_engine(kind)
        for call in (
            lambda: engine.query_incremental((0.0, 0.0), ["cafe"]),
            lambda: engine.query_ranked((0.0, 0.0), ["cafe"]),
            lambda: engine.search(
                SpatialKeywordQuery.of(
                    (0.0, 0.0), ["cafe"], 2, ranking=LinearRanking()
                )
            ),
        ):
            try:
                call()
            except QueryError:
                pass  # the contract: capability gaps surface as QueryError

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_unbuilt_query_is_index_error(self, kind):
        engine = SpatialKeywordEngine(index=kind, signature_bytes=4)
        engine.add_all(OBJECTS)
        with pytest.raises(IndexError_):
            engine.query((0.0, 0.0), ["cafe"], k=1)
        with pytest.raises(IndexError_):
            engine.index.require_built()

    def test_sharded_engine_follows_the_same_contract(self):
        sharded = ShardedEngine(n_shards=2, index="iio")
        sharded.add_all(OBJECTS)
        with pytest.raises(IndexError_):
            sharded.query((0.0, 0.0), ["cafe"], k=1)
        sharded.build()
        with sharded:
            with pytest.raises(QueryError, match="incremental"):
                sharded.query_incremental((0.0, 0.0), ["cafe"])
            with pytest.raises(QueryError, match="ranked"):
                sharded.query_ranked((0.0, 0.0), ["cafe"], k=2)

    def test_ranked_area_query_rejected_at_construction(self):
        with pytest.raises(QueryError):
            SpatialKeywordQuery(
                (0.0, 0.0),
                ("cafe",),
                2,
                area=Rect((0.0, 0.0), (1.0, 1.0)),
                ranking=LinearRanking(),
            )


class TestUnifiedSearch:
    def test_search_equals_query(self, engine):
        query = SpatialKeywordQuery.of((0.5, 0.5), ["cafe"], 3)
        via_search = engine.search(query)
        via_legacy = engine.query((0.5, 0.5), ["cafe"], k=3)
        assert via_search.oids == via_legacy.oids
        assert via_search.algorithm == via_legacy.algorithm

    def test_search_equals_query_area(self, engine):
        area = Rect((0.0, 0.0), (2.0, 2.0))
        query = SpatialKeywordQuery.of_area(area, ["wifi"], 3)
        via_search = engine.search(query)
        via_legacy = engine.query_area((0.0, 0.0), (2.0, 2.0), ["wifi"], k=3)
        assert via_search.oids == via_legacy.oids

    def test_search_equals_query_ranked(self):
        engine = built_engine("ir2")
        ranking = LinearRanking()
        query = SpatialKeywordQuery.of((0.0, 0.0), ["cafe"], 3, ranking=ranking)
        via_search = engine.search(query)
        via_legacy = engine.query_ranked((0.0, 0.0), ["cafe"], k=3,
                                         ranking=ranking)
        assert via_search.oids == via_legacy.oids
        assert [r.score for r in via_search.results] == [
            r.score for r in via_legacy.results
        ]

    def test_sharded_search_equals_delegates(self):
        sharded = ShardedEngine(n_shards=2, index="ir2")
        sharded.add_all(OBJECTS)
        sharded.build()
        with sharded:
            query = SpatialKeywordQuery.of((0.5, 0.5), ["cafe"], 3)
            assert sharded.search(query).oids == (
                sharded.query((0.5, 0.5), ["cafe"], k=3).oids
            )


class TestExecutionPayload:
    EXPECTED_KEYS = {
        "algorithm", "query", "results", "oids", "io",
        "objects_inspected", "false_positive_candidates",
        "nodes_visited", "simulated_ms", "degraded", "failed_shards",
        "engine_version",
    }

    def test_to_dict_is_json_clean(self, engine):
        execution = engine.query((0.0, 0.0), ["cafe"], k=2)
        payload = execution.to_dict()
        json.dumps(payload)
        assert set(payload) == self.EXPECTED_KEYS
        assert payload["oids"] == execution.oids
        assert payload["query"]["keywords"] == ["cafe"]
        assert payload["io"]["random_reads"] == execution.io.random_reads
        assert payload["results"][0]["oid"] == execution.results[0].obj.oid

    def test_sharded_payload_carries_breakdown(self):
        sharded = ShardedEngine(n_shards=2, index="ir2")
        sharded.add_all(OBJECTS)
        sharded.build()
        with sharded:
            payload = sharded.query((0.0, 0.0), ["cafe"], k=2).to_dict()
            json.dumps(payload)
            assert set(payload) == self.EXPECTED_KEYS | {"shards"}
            assert len(payload["shards"]) == 2


class TestServiceSubmissionSurface:
    """The redesigned QueryService API: submit / submit_many / search."""

    QUERY = SpatialKeywordQuery.of((0.5, 0.5), ("cafe",), 3)

    @pytest.fixture()
    def service(self):
        with QueryService(built_engine("ir2"), workers=2) as service:
            yield service

    def test_submit_returns_future(self, service):
        future = service.submit(self.QUERY)
        assert isinstance(future, Future)
        execution = future.result()
        assert isinstance(execution, QueryExecution)
        assert execution.oids == [1, 2, 4]

    def test_submit_many_preserves_order(self, service):
        queries = [
            SpatialKeywordQuery.of((0.5, 0.5), ("cafe",), 3),
            SpatialKeywordQuery.of((3.0, 3.0), ("garden",), 2),
            SpatialKeywordQuery.of((0.0, 0.0), ("wifi",), 1),
        ]
        futures = service.submit_many(queries)
        assert [type(f) for f in futures] == [Future] * 3
        executions = [f.result() for f in futures]
        for query, execution in zip(queries, executions):
            assert execution.query is query or (
                execution.query.keywords == query.keywords
            )
            assert execution.oids == service.search(query).oids

    def test_search_is_synchronous(self, service):
        execution = service.search(self.QUERY)
        assert isinstance(execution, QueryExecution)
        assert execution.oids == service.submit(self.QUERY).result().oids

    def test_submit_many_rejects_non_queries(self, service):
        with pytest.raises(ServiceError, match="SpatialKeywordQuery"):
            service.submit_many([self.QUERY, ((0.0, 0.0), ["cafe"])])

    def test_search_rejects_non_queries(self, service):
        with pytest.raises(ServiceError, match="SpatialKeywordQuery"):
            service.search(((0.0, 0.0), ["cafe"], 3))

    # -- Deprecation shims (the pre-redesign surface) ---------------------

    def test_submit_point_shape_warns_and_works(self, service):
        with pytest.warns(DeprecationWarning, match="QueryService.submit"):
            future = service.submit((0.5, 0.5), ["cafe"], 3)
        assert future.result().oids == service.search(self.QUERY).oids

    def test_submit_query_shim(self, service):
        with pytest.warns(DeprecationWarning,
                          match="QueryService.submit_query"):
            future = service.submit_query(self.QUERY)
        assert future.result().oids == service.search(self.QUERY).oids

    def test_query_shim(self, service):
        with pytest.warns(DeprecationWarning, match="QueryService.query"):
            execution = service.query((0.5, 0.5), ["cafe"], 3)
        assert execution.oids == service.search(self.QUERY).oids

    def test_execute_shim(self, service):
        with pytest.warns(DeprecationWarning, match="QueryService.execute"):
            execution = service.execute(self.QUERY)
        assert execution.oids == service.search(self.QUERY).oids

    def test_new_surface_emits_no_warnings(self, service):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            service.search(self.QUERY)
            service.submit(self.QUERY).result()
            service.run_batch([self.QUERY])
