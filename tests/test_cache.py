"""Unit tests for the LRU buffer pool device."""

from __future__ import annotations

import pytest

from repro.storage import BufferPoolDevice, InMemoryBlockDevice


@pytest.fixture
def pool():
    inner = InMemoryBlockDevice(block_size=32)
    return BufferPoolDevice(inner, capacity_blocks=2)


class TestCaching:
    def test_hit_skips_disk(self, pool):
        pool.write_block(0, b"a")
        pool.inner.stats.reset()
        pool.read_block(0)  # cached by the write-through
        assert pool.inner.stats.total_reads == 0
        assert pool.hits == 1

    def test_miss_reads_through_and_admits(self, pool):
        pool.inner.write_block(0, b"cold")  # bypass the pool
        assert pool.read_block(0)[:4] == b"cold"
        assert pool.misses == 1
        pool.inner.stats.reset()
        pool.read_block(0)
        assert pool.inner.stats.total_reads == 0

    def test_lru_eviction(self, pool):
        for block in range(3):  # capacity 2 -> block 0 evicted
            pool.write_block(block, bytes([block]))
        pool.inner.stats.reset()
        pool.read_block(0)
        assert pool.inner.stats.total_reads == 1

    def test_read_refreshes_recency(self, pool):
        pool.write_block(0, b"a")
        pool.write_block(1, b"b")
        pool.read_block(0)  # 0 becomes most recent
        pool.write_block(2, b"c")  # evicts 1, not 0
        pool.inner.stats.reset()
        pool.read_block(0)
        assert pool.inner.stats.total_reads == 0
        pool.read_block(1)
        assert pool.inner.stats.total_reads == 1

    def test_write_through_updates_cached_copy(self, pool):
        pool.write_block(0, b"old")
        pool.write_block(0, b"new")
        assert pool.read_block(0)[:3] == b"new"
        assert pool.inner._read_raw(0)[:3] == b"new"

    def test_hit_rate(self, pool):
        pool.write_block(0, b"a")
        pool.read_block(0)
        pool.inner.write_block(5, b"x")
        pool.read_block(5)
        assert pool.hit_rate == pytest.approx(0.5)

    def test_clear(self, pool):
        pool.write_block(0, b"a")
        pool.read_block(0)
        pool.clear()
        assert pool.hits == 0
        assert pool.hit_rate == 0.0
        pool.inner.stats.reset()
        pool.read_block(0)
        assert pool.inner.stats.total_reads == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BufferPoolDevice(InMemoryBlockDevice(), capacity_blocks=0)

    def test_num_blocks_delegates(self, pool):
        pool.write_block(4, b"z")
        assert pool.num_blocks == pool.inner.num_blocks == 5

    def test_stats_shared_with_inner(self, pool):
        """Disk-access accounting lives on the inner device's stats."""
        pool.write_block(0, b"a")
        assert pool.stats is pool.inner.stats
        assert pool.stats.total_writes == 1
