"""Tests for remaining benchmark-harness paths and the module entry point."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.bench import ExperimentContext, save_markdown
from repro.bench.workloads import with_k


@pytest.fixture(scope="module")
def tiny_context():
    return ExperimentContext(
        "restaurants", scale=0.0005, signature_bytes=8, algorithms=("IR2",)
    )


class TestHarnessMisc:
    def test_run_queries_executes_without_metrics(self, tiny_context):
        queries = tiny_context.workload.queries(2, 1, 3)
        tiny_context.run_queries("IR2", queries)  # must simply not raise

    def test_save_markdown_writes_file(self, tmp_path):
        path = save_markdown("unit", "| a |\n|---|\n| 1 |", directory=str(tmp_path))
        assert os.path.exists(path)
        assert "| a |" in open(path).read()

    def test_save_markdown_respects_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "custom"))
        path = save_markdown("unit2", "content")
        assert str(tmp_path / "custom") in path

    def test_measure_empty_query_list(self, tiny_context):
        row = tiny_context.measure("IR2", [])
        assert row.simulated_ms == 0.0
        assert row.random_accesses == 0.0

    def test_with_k_empty_batch(self):
        assert with_k([], 5) == []


class TestModuleEntryPoint:
    def test_python_dash_m_repro_help(self):
        """``python -m repro --help`` must work as a real subprocess."""
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "generate" in result.stdout
        assert "build" in result.stdout
        assert "query" in result.stdout

    def test_python_dash_m_repro_bad_command(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "frobnicate"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode != 0
