"""Tests for benchmark workload generation."""

from __future__ import annotations

import pytest

from repro.bench import WorkloadGenerator
from repro.bench.workloads import truncate_keywords, with_k
from repro.errors import DatasetError
from repro.text.analyzer import DEFAULT_ANALYZER


@pytest.fixture
def workload(small_objects):
    return WorkloadGenerator(small_objects, DEFAULT_ANALYZER, seed=5)


class TestGeneration:
    def test_deterministic(self, small_objects):
        a = WorkloadGenerator(small_objects, DEFAULT_ANALYZER, seed=5).queries(5, 2, 10)
        b = WorkloadGenerator(small_objects, DEFAULT_ANALYZER, seed=5).queries(5, 2, 10)
        assert a == b

    def test_seed_matters(self, small_objects):
        a = WorkloadGenerator(small_objects, DEFAULT_ANALYZER, seed=5).queries(5, 2, 10)
        b = WorkloadGenerator(small_objects, DEFAULT_ANALYZER, seed=6).queries(5, 2, 10)
        assert a != b

    def test_keywords_guarantee_an_answer(self, workload, small_objects):
        """Keywords co-occur in some object => conjunction is satisfiable."""
        for query in workload.queries(10, 2, 5):
            assert any(
                DEFAULT_ANALYZER.contains_all(obj.text, query.keywords)
                for obj in small_objects
            )

    def test_keyword_count_respected(self, workload):
        for count in (1, 2, 3):
            query = workload.query(count, 5)
            assert len(query.keywords) == count

    def test_points_within_extent(self, workload, small_objects):
        lats = [o.point[0] for o in small_objects]
        lons = [o.point[1] for o in small_objects]
        for query in workload.queries(10, 1, 1):
            assert min(lats) <= query.point[0] <= max(lats)
            assert min(lons) <= query.point[1] <= max(lons)

    def test_empty_objects_rejected(self):
        with pytest.raises(DatasetError):
            WorkloadGenerator([], DEFAULT_ANALYZER)

    def test_invalid_keyword_count(self, workload):
        with pytest.raises(DatasetError):
            workload.sample_keywords(0)


class TestFrequencyBands:
    def test_band_respected(self, workload, small_objects):
        n = len(small_objects)
        keywords = workload.keywords_in_frequency_band(3, 0.0, 0.5)
        df = workload._document_frequencies()
        for keyword in keywords:
            assert df[keyword] <= 0.5 * n

    def test_impossible_band_raises(self, workload):
        with pytest.raises(DatasetError):
            workload.keywords_in_frequency_band(1, 0.999, 1.0)

    def test_band_queries_have_requested_shape(self, workload):
        queries = workload.frequency_band_queries(4, 2, 7, 0.0, 0.9)
        assert len(queries) == 4
        assert all(len(q.keywords) == 2 and q.k == 7 for q in queries)

    def test_df_cache_consistent_with_analyzer(self, workload, small_objects):
        df = workload._document_frequencies()
        sample_term = next(iter(df))
        manual = sum(
            1
            for obj in small_objects
            if sample_term in DEFAULT_ANALYZER.terms(obj.text)
        )
        assert df[sample_term] == manual


class TestBatchHelpers:
    def test_with_k_changes_only_k(self, workload):
        base = workload.queries(4, 2, 10)
        rekeyed = with_k(base, 50)
        assert [q.point for q in rekeyed] == [q.point for q in base]
        assert [q.keywords for q in rekeyed] == [q.keywords for q in base]
        assert all(q.k == 50 for q in rekeyed)

    def test_truncate_keywords_takes_prefix(self, workload):
        base = workload.queries(4, 3, 10)
        narrowed = truncate_keywords(base, 2)
        for original, cut in zip(base, narrowed):
            assert cut.keywords == original.keywords[:2]
            assert cut.k == original.k


class TestConcurrentLoadGenerator:
    def test_hot_queries_repeat(self, small_objects):
        from repro.bench import ConcurrentLoadGenerator

        generator = ConcurrentLoadGenerator(small_objects, DEFAULT_ANALYZER, seed=5)
        batch = generator.batch(80, num_keywords=2, k=5, hot_fraction=0.6,
                                hot_pool=4)
        assert len(batch) == 80
        counts: dict = {}
        for query in batch:
            counts[(query.point, query.keywords)] = (
                counts.get((query.point, query.keywords), 0) + 1
            )
        # A hot pool of 4 over ~48 hot slots must repeat some query a lot.
        assert max(counts.values()) >= 5

    def test_deterministic(self, small_objects):
        from repro.bench import ConcurrentLoadGenerator

        a = ConcurrentLoadGenerator(small_objects, DEFAULT_ANALYZER, seed=7)
        b = ConcurrentLoadGenerator(small_objects, DEFAULT_ANALYZER, seed=7)
        assert a.batch(30, 2, 5) == b.batch(30, 2, 5)

    def test_zero_hot_fraction_is_all_cold(self, small_objects):
        from repro.bench import ConcurrentLoadGenerator

        generator = ConcurrentLoadGenerator(small_objects, DEFAULT_ANALYZER, seed=5)
        batch = generator.batch(20, num_keywords=1, k=3, hot_fraction=0.0)
        assert len(batch) == 20

    def test_invalid_hot_fraction_rejected(self, small_objects):
        from repro.bench import ConcurrentLoadGenerator

        generator = ConcurrentLoadGenerator(small_objects, DEFAULT_ANALYZER, seed=5)
        with pytest.raises(DatasetError):
            generator.batch(10, hot_fraction=1.5)
