"""Tests for the pytest-free reproduction driver (repro.bench.suite)."""

from __future__ import annotations

import os

import pytest

from repro.bench.suite import build_arg_parser, main


class TestArgs:
    def test_defaults(self):
        args = build_arg_parser().parse_args([])
        assert args.scale is None
        assert args.out == "benchmarks/results"
        assert args.skip_signature_sweeps is False

    def test_custom(self):
        args = build_arg_parser().parse_args(
            ["--scale", "0.1", "--queries", "2", "--out", "x",
             "--skip-signature-sweeps"]
        )
        assert args.scale == 0.1
        assert args.queries == 2
        assert args.skip_signature_sweeps is True


class TestRun:
    def test_tiny_run_produces_all_artifacts(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_QUERIES", raising=False)
        code = main(
            ["--scale", "0.002", "--queries", "2", "--out", str(tmp_path),
             "--skip-signature-sweeps"]
        )
        assert code == 0
        produced = sorted(os.listdir(tmp_path))
        assert produced == [
            "suite_figure10.md",
            "suite_figure12.md",
            "suite_figure13.md",
            "suite_figure9.md",
            "suite_table1.md",
            "suite_table2.md",
        ]
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 9" in out
        assert "legend:" in out  # ASCII figures included
        # Every figure file embeds both tables and chart.
        figure9 = (tmp_path / "suite_figure9.md").read_text()
        assert "simulated execution time" in figure9
        assert "log10 y-axis" in figure9 or "linear y-axis" in figure9
