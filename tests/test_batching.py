"""Batched execution: shared-work scheduling stays byte-faithful.

The batch front-end (:mod:`repro.serve.scheduler` + the shared-read
session in :mod:`repro.storage.sharedread`) must change *cost*, never
*answers*:

* batched answers are byte-identical to serial execution across every
  index kind and shard count (the differential harness's oracle);
* a batch of N overlapping queries issues strictly fewer device reads
  than N serial runs (sublinear growth — the whole point), while
  per-query attribution stays exact: real reads still sum to the device
  totals, and real + shared reads equal each query's standalone cost;
* coalesced duplicates get independent result copies (the PR 4
  cache-aliasing guarantee, extended to in-flight coalescing);
* admission control sheds with :class:`~repro.errors.ServiceOverloadError`
  and tracks the ``service.queue_depth`` gauge;
* batch groups appear in the hierarchical trace as a ``batch`` root
  with one ``query`` child per executed member.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.bench.workloads import WorkloadGenerator
from repro.core.engine import SpatialKeywordEngine
from repro.core.query import SpatialKeywordQuery
from repro.errors import ServiceError, ServiceOverloadError
from repro.obs.trace import QueryTracer
from repro.serve import BatchConfig, BatchScheduler, QueryService
from repro.serve.scheduler import BatchMember
from repro.shard import ShardedEngine
from repro.storage.sharedread import (
    SharedReadSession,
    activate_session,
    current_session,
)

from tests.test_differential import KINDS, corpus_objects

SHARD_COUNTS = (1, 2, 5)


@pytest.fixture(scope="module")
def world():
    """One small corpus, its workload, and serial ground truth."""
    objects = corpus_objects(150, seed=23)
    probe = SpatialKeywordEngine(index="ir2", signature_bytes=4)
    probe.add_all(objects)
    probe.build()
    workload = WorkloadGenerator(objects, probe.corpus.analyzer, seed=7)
    queries = workload.queries(24, num_keywords=2, k=8)
    return objects, queries


def _serial_answers(engine, queries):
    return [engine.search(query) for query in queries]


class TestBatchedEqualsSerial:
    """Differential: batched == serial for every engine flavor."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_all_index_kinds(self, world, kind):
        objects, queries = world
        engine = SpatialKeywordEngine(index=kind, signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        serial = _serial_answers(engine, queries)
        with QueryService(
            engine, workers=2, cache=False,
            batching=BatchConfig(max_batch=8),
        ) as service:
            batched = service.run_batch(queries)
        for s, b in zip(serial, batched):
            assert b.oids == s.oids, kind
            assert [r.distance for r in b.results] == [
                r.distance for r in s.results
            ], kind

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_sharded_engines(self, world, n_shards):
        objects, queries = world
        engine = ShardedEngine(n_shards=n_shards, index="ir2")
        engine.add_all(objects)
        engine.build()
        with engine:
            serial = _serial_answers(engine, queries)
            with QueryService(
                engine, workers=2, cache=False,
                batching=BatchConfig(max_batch=8),
            ) as service:
                batched = service.run_batch(queries)
        for s, b in zip(serial, batched):
            assert b.oids == s.oids
            assert [r.distance for r in b.results] == [
                r.distance for r in s.results
            ]


class TestSublinearReads:
    """Shared-read sessions make batch cost grow sublinearly."""

    def test_identical_queries_share_almost_everything(self, world):
        objects, queries = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        query = queries[0]
        alone = engine.search(query).io.total_reads
        assert alone > 0
        n = 8
        engine.reset_io()
        with QueryService(
            engine, workers=1, cache=False,
            batching=BatchConfig(max_batch=n, coalesce=False),
        ) as service:
            executions = service.run_batch(
                [SpatialKeywordQuery.of(query.point, query.keywords, query.k)
                 for _ in range(n)]
            )
        totals = engine.io_stats()
        # Sublinear: far fewer device reads than n serial runs — only the
        # first member touches the device, the rest hit the session.  The
        # session also dedupes the leader's own intra-query repeat reads,
        # so the device sees at most the query's unique block set.
        assert totals.total_reads < n * alone
        assert totals.total_reads <= alone
        # Attribution stays exact under sharing.
        assert sum(e.io.total_reads for e in executions) == totals.total_reads
        assert sum(e.io.shared_reads for e in executions) == totals.shared_reads
        # Each member's standalone cost is still reconstructible.
        for execution in executions:
            assert (
                execution.io.total_reads + execution.io.shared_reads == alone
            )

    def test_metered_batch_beats_serial_on_mixed_queries(self, world):
        """Deterministic: a mixed batch costs fewer device reads batched."""
        objects, queries = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        engine.reset_io()
        for query in queries:
            engine.search(query)
        serial_reads = engine.io_stats().total_reads
        engine.reset_io()
        with QueryService(
            engine, workers=1, cache=False,
            batching=BatchConfig(max_batch=len(queries)),
        ) as service:
            service.run_batch(queries)
        batched_reads = engine.io_stats().total_reads
        assert batched_reads < serial_reads

    def test_shared_reads_sum_to_device_totals(self, world):
        """Per-query deltas reconcile with the device under batching."""
        objects, queries = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        engine.reset_io()
        with QueryService(
            engine, workers=2, cache=False,
            batching=BatchConfig(max_batch=6),
        ) as service:
            executions = service.run_batch(queries)
            stats = service.stats()
        totals = engine.io_stats()
        assert sum(e.io.total_reads for e in executions) == totals.total_reads
        assert (
            sum(e.io.random_reads for e in executions) == totals.random_reads
        )
        assert (
            sum(e.io.sequential_reads for e in executions)
            == totals.sequential_reads
        )
        assert (
            sum(e.io.shared_reads for e in executions) == totals.shared_reads
        )
        assert stats.io.total_reads == totals.total_reads
        assert stats.io.shared_reads == totals.shared_reads
        assert stats.batches >= 1


class TestCoalescing:
    """Duplicate in-flight queries collapse onto one execution."""

    @pytest.fixture()
    def service(self, world):
        objects, _ = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        with QueryService(
            engine, workers=1, cache=False,
            batching=BatchConfig(max_batch=16),
        ) as service:
            yield service

    def test_duplicates_coalesce_onto_one_execution(self, world, service):
        _, queries = world
        query = queries[0]
        duplicates = [
            SpatialKeywordQuery.of(query.point, query.keywords, query.k)
            for _ in range(4)
        ]
        executions = service.run_batch(duplicates)
        stats = service.stats()
        assert stats.coalesced == 3
        assert stats.queries == 4
        leader, followers = executions[0], executions[1:]
        for follower in followers:
            assert follower.oids == leader.oids
            # The rider executed nothing: its own I/O delta is zero.
            assert follower.io.total_reads == 0
            assert follower.trace.cache == "coalesced"
            assert follower.trace.batch_id == leader.trace.batch_id

    def test_followers_get_independent_result_copies(self, world, service):
        """Regression (PR 4 aliasing, extended): one caller mutating a
        coalesced answer must never reach another caller's copy."""
        _, queries = world
        query = queries[0]
        duplicates = [
            SpatialKeywordQuery.of(query.point, query.keywords, query.k)
            for _ in range(3)
        ]
        first, second, third = service.run_batch(duplicates)
        assert first.results[0] is not second.results[0]
        assert second.results[0] is not third.results[0]
        original = first.results[0].distance
        second.results[0].distance = -1.0
        second.results.clear()
        assert first.results[0].distance == original
        assert third.results[0].distance == original
        assert first.results and third.results

    def test_distinct_queries_do_not_coalesce(self, world, service):
        _, queries = world
        service.run_batch(queries[:4])
        assert service.stats().coalesced == 0


class TestAdmissionControl:
    """Bounded queue: shed beyond max_pending, track the depth gauge."""

    @pytest.fixture()
    def engine(self, world):
        objects, _ = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        return engine

    def test_shed_beyond_max_pending(self, engine, world):
        _, queries = world
        with QueryService(
            engine, workers=1, cache=False,
            batching=BatchConfig(window_ms=50.0, max_batch=64, max_pending=3),
        ) as service:
            futures = [service.submit(q) for q in queries[:3]]
            assert service.queue_depth == 3
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit(queries[3])
            assert excinfo.value.pending == 3
            assert excinfo.value.max_pending == 3
            for future in futures:
                future.result()
            stats = service.stats()
            assert stats.shed == 1
            assert service.queue_depth == 0
            gauges = stats.metrics["gauges"]
            assert gauges["service.queue_depth"] == 0
            assert stats.metrics["counters"]["service.shed"] == 1
            # Depth drained: the service admits again.
            assert service.submit(queries[3]).result().oids is not None

    def test_submit_many_sheds_all_or_nothing(self, engine, world):
        _, queries = world
        with QueryService(
            engine, workers=1, cache=False,
            batching=BatchConfig(window_ms=50.0, max_batch=64, max_pending=4),
        ) as service:
            first = service.submit(queries[0])
            with pytest.raises(ServiceOverloadError):
                service.submit_many(queries[1:6])  # 1 + 5 > 4
            first.result()
            # The refused batch claimed nothing: once the first drains,
            # a full batch of 4 still fits.
            futures = service.submit_many(queries[1:5])
            assert len(futures) == 4
            for future in futures:
                future.result()

    def test_unbounded_by_default(self, engine, world):
        _, queries = world
        with QueryService(
            engine, workers=1, cache=False, batching=True,
        ) as service:
            executions = service.run_batch(queries)
            assert len(executions) == len(queries)
            assert service.stats().shed == 0


class TestBatchTracing:
    """Batch groups land in the span tree: batch root → member queries."""

    def test_batch_trace_tree(self, world):
        objects, queries = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        tracer = QueryTracer(sample_every=1)
        with QueryService(
            engine, workers=1, cache=False, tracer=tracer,
            batching=BatchConfig(max_batch=4, coalesce=False),
        ) as service:
            service.run_batch(queries[:4])
        traces = [
            t for t in tracer.traces()
            if t.root is not None and t.root.name == "batch"
        ]
        assert traces
        trace = traces[0]
        root = trace.root
        assert root.category == "batch"
        assert root.attrs["batch_size"] == 4
        assert "shared_reads" in root.attrs
        members = [
            span for span in trace.spans
            if span.parent_id == root.span_id and span.name == "query"
        ]
        assert len(members) == 4
        # Member spans carry disjoint intervals on the batch lane.
        members.sort(key=lambda span: span.start)
        for earlier, later in zip(members, members[1:]):
            assert earlier.end is not None
            assert earlier.end <= later.start + 1e-9
        # The flat spans link back via trace_id and batch_id.
        spans = [s for s in service.trace_spans() if s.batch_id is not None]
        assert spans
        assert all(s.trace_id == trace.trace_id for s in spans)

    def test_flat_spans_carry_batch_fields(self, world):
        objects, queries = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        with QueryService(
            engine, workers=1, cache=False,
            batching=BatchConfig(max_batch=8),
        ) as service:
            service.run_batch(queries[:8])
            span = service.trace_spans()[0]
        payload = span.as_dict()
        assert payload["batch_id"] is not None
        assert "shared_reads" in payload


class TestWindowGrouping:
    """The arrival-window path: submissions group without submit_many."""

    def test_window_groups_submissions(self, world):
        objects, queries = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        with QueryService(
            engine, workers=1, cache=False,
            batching=BatchConfig(window_ms=25.0, max_batch=16),
        ) as service:
            futures = [service.submit(query) for query in queries[:5]]
            executions = [future.result() for future in futures]
            stats = service.stats()
        assert stats.queries == 5
        # All five arrived within one window: at most two groups even
        # under scheduling jitter, and far fewer than five.
        assert 1 <= stats.batches <= 2
        batch_ids = {e.trace.batch_id for e in executions}
        assert len(batch_ids) == stats.batches

    def test_max_batch_flushes_early(self, world):
        objects, queries = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        with QueryService(
            engine, workers=2, cache=False,
            batching=BatchConfig(window_ms=10_000.0, max_batch=2,
                                 coalesce=False),
        ) as service:
            futures = [service.submit(query) for query in queries[:4]]
            for future in futures:
                future.result()  # would hang until the 10 s window if
                # max_batch never flushed
            assert service.stats().batches == 2

    def test_close_flushes_the_open_window(self, world):
        objects, queries = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        service = QueryService(
            engine, workers=1, cache=False,
            batching=BatchConfig(window_ms=10_000.0, max_batch=64),
        )
        future = service.submit(queries[0])
        service.close()
        assert future.result().oids  # resolved by the close-time flush


class TestSchedulerUnit:
    """BatchScheduler in isolation, with a recording dispatch."""

    @staticmethod
    def _member(query):
        from concurrent.futures import Future

        return BatchMember(query, Future(), 0, time.perf_counter())

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            BatchConfig(window_ms=-1.0)
        with pytest.raises(ServiceError):
            BatchConfig(max_batch=0)
        with pytest.raises(ServiceError):
            BatchConfig(max_pending=0)

    def test_submit_group_chunks_by_max_batch(self, world):
        _, queries = world
        groups = []
        scheduler = BatchScheduler(
            BatchConfig(max_batch=3, coalesce=False), groups.append
        )
        scheduler.submit_group([self._member(q) for q in queries[:8]])
        assert [len(g.members) for g in groups] == [3, 3, 2]
        assert [g.batch_id for g in groups] == [0, 1, 2]

    def test_explicit_batch_never_merges_with_window_traffic(self, world):
        _, queries = world
        groups = []
        scheduler = BatchScheduler(
            BatchConfig(window_ms=10_000.0, max_batch=64), groups.append
        )
        scheduler.submit(self._member(queries[0]))
        scheduler.submit_group([self._member(q) for q in queries[1:4]])
        assert len(groups) == 2
        assert len(groups[0].members) == 1  # the ambient window, alone
        assert len(groups[1].members) == 3
        scheduler.close()

    def test_closed_scheduler_refuses(self, world):
        _, queries = world
        scheduler = BatchScheduler(BatchConfig(), lambda group: None)
        scheduler.close()
        with pytest.raises(ServiceError, match="closed"):
            scheduler.submit(self._member(queries[0]))


class TestSharedReadSession:
    """The storage-layer session: scoping, hits, and head neutrality."""

    def test_session_stack_is_thread_local(self):
        session = SharedReadSession()
        seen = {}
        with activate_session(session):
            assert current_session() is session

            def probe():
                seen["other"] = current_session()

            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other"] is None
        assert current_session() is None

    def test_shared_hits_do_not_move_the_head(self):
        """A session hit must not change random/sequential classification
        of the real reads around it — that would alter paper-metric I/O
        counts.  Read 0,1,2 (one random, two sequential), then re-read 1
        (a session hit) and read 3: block 3 must still classify as
        sequential after 2, as if the hit never happened."""
        from repro.storage.block import InMemoryBlockDevice

        device = InMemoryBlockDevice(block_size=64)
        for block_id in range(4):
            device.write_block(block_id, bytes([block_id]) * 8)
        device.stats.reset()
        with activate_session(SharedReadSession()):
            for block_id in (0, 1, 2):
                device.read_block(block_id)
            assert device.stats.random_reads == 1
            assert device.stats.sequential_reads == 2
            device.read_block(1)  # session hit: no device I/O, no head move
            assert device.stats.shared_reads == 1
            assert device.stats.total_reads == 3
            device.read_block(3)
            assert device.stats.sequential_reads == 3  # 3 follows 2
            assert device.stats.random_reads == 1

    def test_session_reconstructs_standalone_cost(self, world):
        """real + shared reads always equal the standalone access count."""
        objects, queries = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        query = queries[0]
        baseline = engine.search(query)
        with activate_session(SharedReadSession()):
            first = engine.search(query)
            second = engine.search(query)
        assert first.oids == baseline.oids == second.oids
        # The session dedupes even intra-query repeats, but every access
        # still lands in the per-query delta as real or shared.
        assert (
            first.io.total_reads + first.io.shared_reads
            == baseline.io.total_reads
        )
        assert second.io.total_reads == 0
        assert second.io.shared_reads == baseline.io.total_reads

    def test_engine_search_many_shares_one_session(self, world):
        objects, queries = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        serial = [engine.search(q) for q in queries[:6]]
        engine.reset_io()
        batched = engine.search_many(queries[:6])
        totals = engine.io_stats()
        for s, b in zip(serial, batched):
            assert b.oids == s.oids
        assert totals.shared_reads > 0
        assert sum(e.io.total_reads for e in batched) == totals.total_reads

    @pytest.mark.parametrize("n_shards", (2, 5))
    def test_sharded_search_many_propagates_session(self, world, n_shards):
        """The session crosses into shard fan-out worker threads."""
        objects, queries = world
        engine = ShardedEngine(n_shards=n_shards, index="ir2")
        engine.add_all(objects)
        engine.build()
        with engine:
            serial = [engine.search(q) for q in queries[:6]]
            engine.reset_io()
            batched = engine.search_many(queries[:6])
            totals = engine.io_stats()
        for s, b in zip(serial, batched):
            assert b.oids == s.oids
        assert totals.shared_reads > 0


class TestBatchedErrorIsolation:
    """One failing member must not poison the rest of its group."""

    def test_member_failure_is_isolated(self, world):
        objects, queries = world
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add_all(objects)
        engine.build()
        boom = SpatialKeywordQuery.of((0.0, 0.0), ("cafe",), 3)
        original_search = engine.search

        def flaky_search(query):
            if query is boom:
                raise RuntimeError("injected")
            return original_search(query)

        engine.search = flaky_search
        try:
            with QueryService(
                engine, workers=1, cache=False, retries=0,
                batching=BatchConfig(max_batch=4, coalesce=False),
            ) as service:
                futures = service.submit_many(
                    [queries[0], boom, queries[1]]
                )
                assert futures[0].result().oids == (
                    _serial_answers(engine, [queries[0]])[0].oids
                )
                with pytest.raises(RuntimeError, match="injected"):
                    futures[1].result()
                assert futures[2].result().oids
                stats = service.stats()
                assert stats.errors == 1
                assert stats.queries == 2
        finally:
            engine.search = original_search
