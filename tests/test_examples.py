"""Smoke tests: the example scripts run end to end and stay correct.

Each example's ``main`` is executed in-process (with sizes scaled down
where needed) so documentation code cannot silently rot.
"""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def load_example(name: str):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        module.main()  # contains its own assertions (paper's Example 3)
        out = capsys.readouterr().out
        assert "H7" in out and "H2" in out

    def test_real_estate_ranked(self, capsys):
        module = load_example("real_estate_ranked")
        module.main()
        out = capsys.readouterr().out
        assert "distance-first" in out
        assert "score=" in out

    def test_yellow_pages_small(self, capsys, monkeypatch):
        module = load_example("yellow_pages")
        monkeypatch.setattr(sys, "argv", ["yellow_pages.py", "250"])
        module.main()
        out = capsys.readouterr().out
        assert "identical results" in out
        for label in ("RTREE", "IIO", "IR2", "MIR2"):
            assert label in out

    def test_signature_anatomy_small(self, capsys, monkeypatch):
        module = load_example("signature_anatomy")
        monkeypatch.setattr(module, "N_OBJECTS", 250)
        module.main()
        out = capsys.readouterr().out
        assert "IR2-Tree" in out and "MIR2-Tree" in out
        assert "est. FP rate" in out

    def test_index_maintenance_small(self, capsys, monkeypatch):
        module = load_example("index_maintenance")
        monkeypatch.setattr(module, "N_OBJECTS", 150)
        monkeypatch.setattr(module, "N_UPDATES", 6)
        module.main()
        out = capsys.readouterr().out
        assert "IR2: 12 updates" in out
        assert "MIR2: 12 updates" in out

    def test_concurrent_queries_small(self, capsys, monkeypatch):
        module = load_example("concurrent_queries")
        monkeypatch.setattr(module, "N_OBJECTS", 250)
        monkeypatch.setattr(module, "N_QUERIES", 24)
        monkeypatch.setattr(module, "WORKERS", 4)
        module.main()  # contains its own parallel-vs-serial assertions
        out = capsys.readouterr().out
        assert "identical to serial execution" in out
        assert "per-query I/O sums to device totals" in out
        assert "new object ranked first" in out

    def test_sharded_engine_small(self, capsys, monkeypatch):
        module = load_example("sharded_engine")
        monkeypatch.setattr(module, "N_OBJECTS", 250)
        monkeypatch.setattr(module, "N_QUERIES", 6)
        module.main()  # contains its own sharded-vs-single assertions
        out = capsys.readouterr().out
        assert "answers identical" in out
        assert "round-trip OK" in out
        assert "served 6 queries" in out

    def test_every_example_has_a_test(self):
        """Guard: adding an example without a smoke test fails here."""
        scripts = {
            name[:-3]
            for name in os.listdir(EXAMPLES_DIR)
            if name.endswith(".py")
        }
        tested = {
            "quickstart",
            "real_estate_ranked",
            "yellow_pages",
            "signature_anatomy",
            "index_maintenance",
            "concurrent_queries",
            "sharded_engine",
        }
        assert scripts == tested
