"""Snapshot (copy-on-write) index maintenance: versions, buffers, merges.

Covers the PR-8 maintenance redesign end to end:

* :class:`~repro.serve.WriteBuffer` — epoch composition, insert/delete
  interleaving, masking semantics;
* :class:`~repro.serve.EngineVersion` — overlay search answers are
  byte-identical to a freshly built engine over the same live objects;
* :class:`~repro.serve.SnapshotMaintainer` — publication, background
  merges at the threshold, merge-failure recovery (no write ever lost),
  readers never blocking while a merge is in flight;
* :class:`~repro.serve.QueryService` in ``"snapshot"`` mode —
  read-your-writes, per-version cache stamping, batch version pinning,
  mid-merge persistence, and the rwlock mode kept as baseline;
* the no-op-mutation regressions (deletes of absent oids must not touch
  the result cache, the planner statistics version, or the plan cache);
* :class:`~repro.plan.stats.DensityGrid` exact accounting (underflow is
  an error, ``total == sum(counts)`` always);
* :class:`~repro.serve.ReadWriteLock` — a failed read acquire can never
  underflow the reader count.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import SpatialKeywordEngine
from repro.core.query import SpatialKeywordQuery
from repro.core.search import brute_force_top_k
from repro.errors import QueryError, ServiceError
from repro.model import SpatialObject
from repro.persist import load_engine
from repro.plan.stats import DensityGrid
from repro.serve import (
    RWLOCK,
    SNAPSHOT,
    BatchConfig,
    EngineVersion,
    QueryResultCache,
    QueryService,
    ReadWriteLock,
    SnapshotMaintainer,
    WriteBuffer,
)
from repro.spatial.geometry import Rect

TEXTS = ("cafe wifi", "cafe garden", "museum wifi", "pool garden",
         "cafe museum", "wifi pool")


def make_objects(n: int, start: int = 0) -> list[SpatialObject]:
    return [
        SpatialObject(
            start + i,
            (float((start + i) % 7), float((start + i) % 5)),
            TEXTS[(start + i) % len(TEXTS)],
        )
        for i in range(n)
    ]


def built_engine(kind: str = "ir2", n: int = 24) -> SpatialKeywordEngine:
    engine = SpatialKeywordEngine(index=kind, signature_bytes=4)
    engine.add_all(make_objects(n))
    engine.build()
    return engine


def oracle_search(version: EngineVersion, engine, query):
    """Reference answer: a fresh engine built over the version's objects."""
    analyzer = engine.corpus.analyzer
    return brute_force_top_k(list(version.objects()), analyzer, query)


class TestWriteBuffer:
    def test_insert_then_delete_masks(self):
        buffer = WriteBuffer()
        obj = SpatialObject(1, (0.0, 0.0), "cafe")
        buffer.record_insert(obj)
        assert buffer.depth == 1
        buffer.record_delete(1)
        assert 1 not in buffer.inserts
        assert 1 in buffer.deleted

    def test_delete_then_reinsert_is_live(self):
        buffer = WriteBuffer()
        buffer.record_delete(3)
        obj = SpatialObject(3, (1.0, 1.0), "pool")
        buffer.record_insert(obj)
        # The insert wins (it is consulted first); the base copy stays
        # masked by the deleted set.
        assert buffer.inserts[3] is obj
        assert 3 in buffer.deleted

    def test_composed_with_flattens_epochs(self):
        frozen, active = WriteBuffer(), WriteBuffer()
        frozen.record_insert(SpatialObject(1, (0.0, 0.0), "cafe"))
        frozen.record_delete(2)
        active.record_delete(1)  # later epoch deletes the frozen insert
        newer = SpatialObject(2, (2.0, 2.0), "pool")
        active.record_insert(newer)  # ... and resurrects oid 2
        flat = frozen.composed_with(active)
        assert 1 not in flat.inserts and 1 in flat.deleted
        assert flat.inserts[2] is newer


@pytest.mark.parametrize("kind", ("ir2", "rtree", "iio", "sig"))
class TestEngineVersionSearch:
    def dirty_maintainer(self, kind):
        engine = built_engine(kind)
        maintainer = SnapshotMaintainer(engine, merge_threshold=None)
        for obj in make_objects(6, start=100):
            maintainer.add(obj)
        for oid in (0, 5, 102):
            maintainer.delete(oid)
        return engine, maintainer

    def test_point_query_matches_oracle(self, kind):
        engine, maintainer = self.dirty_maintainer(kind)
        version = maintainer.current
        for target in ((0.0, 0.0), (3.0, 2.0), (6.0, 4.0)):
            for terms in (["cafe"], ["wifi"], ["garden", "pool"]):
                query = SpatialKeywordQuery.of(target, terms, 4)
                got = [r.obj.oid for r in version.search(query).results]
                want = [r.obj.oid for r in oracle_search(version, engine, query)]
                assert got == want, (target, terms)

    def test_area_query_matches_oracle(self, kind):
        engine, maintainer = self.dirty_maintainer(kind)
        version = maintainer.current
        query = SpatialKeywordQuery.of_area(
            Rect((0.0, 0.0), (4.0, 4.0)), ["cafe"], 5
        )
        got = [r.obj.oid for r in version.search(query).results]
        want = [r.obj.oid for r in oracle_search(version, engine, query)]
        assert got == want

    def test_deleted_results_do_not_shrink_k(self, kind):
        """k nearest survivors, not k nearest minus the masked ones."""
        engine = built_engine(kind)
        maintainer = SnapshotMaintainer(engine, merge_threshold=None)
        query = SpatialKeywordQuery.of((0.0, 0.0), ["cafe"], 3)
        before = [r.obj.oid for r in maintainer.current.search(query).results]
        maintainer.delete(before[0])
        after = maintainer.current.search(query).results
        assert len(after) == 3
        assert before[0] not in [r.obj.oid for r in after]

    def test_clean_version_delegates_to_base(self, kind):
        engine = built_engine(kind)
        maintainer = SnapshotMaintainer(engine, merge_threshold=None)
        query = SpatialKeywordQuery.of((1.0, 1.0), ["wifi"], 3)
        assert (maintainer.current.search(query).oids
                == engine.search(query).oids)


class TestEngineVersionRanked:
    def test_dirty_ranked_query_matches_flushed_scores(self):
        """Ranked queries run on dirty snapshots without forcing a flush.

        The overlay rescoring must be byte-identical to what the same
        query returns after the buffer is folded into the base index.
        """
        from repro.core.ranking import LinearRanking

        engine = built_engine("ir2")
        maintainer = SnapshotMaintainer(engine, merge_threshold=None)
        maintainer.add(SpatialObject(200, (0.5, 0.5), "cafe wifi"))
        maintainer.delete(0)
        # A wide distance ramp keeps every score distinct, so the
        # comparison below is order-exact, not merely tie-equivalent.
        query = SpatialKeywordQuery.of(
            (0.0, 0.0), ["cafe"], 3, ranking=LinearRanking(max_distance=20.0)
        )
        dirty = maintainer.current.search(query)
        assert maintainer.current.buffer_depth == 2  # no implicit flush
        maintainer.flush()
        clean = maintainer.current.search(query)
        assert [r.obj.oid for r in dirty.results] == \
            [r.obj.oid for r in clean.results]
        assert [(r.score, r.distance, r.ir_score) for r in dirty.results] == \
            [(r.score, r.distance, r.ir_score) for r in clean.results]

    def test_dirty_ranked_overlay_insert_can_win(self):
        from repro.core.ranking import LinearRanking

        maintainer = SnapshotMaintainer(built_engine("ir2"),
                                        merge_threshold=None)
        maintainer.add(SpatialObject(201, (0.0, 0.0), "cafe cafe cafe"))
        query = SpatialKeywordQuery.of(
            (0.0, 0.0), ["cafe"], 3, ranking=LinearRanking()
        )
        results = maintainer.current.search(query).results
        assert 201 in [r.obj.oid for r in results]

    def test_dirty_ranked_excludes_masked_docs(self):
        from repro.core.ranking import LinearRanking

        engine = built_engine("ir2")
        maintainer = SnapshotMaintainer(engine, merge_threshold=None)
        query = SpatialKeywordQuery.of(
            (0.0, 0.0), ["cafe"], 3, ranking=LinearRanking()
        )
        before = [r.obj.oid for r in maintainer.current.search(query).results]
        maintainer.delete(before[0])
        after = maintainer.current.search(query).results
        assert len(after) == 3  # masked doc replaced, k not shrunk
        assert before[0] not in [r.obj.oid for r in after]


class TestSnapshotMaintainer:
    def test_published_versions_are_immutable(self):
        engine = built_engine()
        maintainer = SnapshotMaintainer(engine, merge_threshold=None)
        v_before = maintainer.current
        n_before = len(v_before)
        maintainer.add(SpatialObject(300, (9.0, 9.0), "cafe"))
        v_after = maintainer.current
        assert v_after.version == v_before.version + 1
        assert len(v_before) == n_before  # the old snapshot never moved
        assert v_after.contains(300) and not v_before.contains(300)

    def test_duplicate_add_raises(self):
        maintainer = SnapshotMaintainer(built_engine(), merge_threshold=None)
        with pytest.raises(QueryError, match="already present"):
            maintainer.add(SpatialObject(0, (0.0, 0.0), "cafe"))
        # Buffered inserts count as present too.
        maintainer.add(SpatialObject(301, (1.0, 1.0), "pool"))
        with pytest.raises(QueryError, match="already present"):
            maintainer.add(SpatialObject(301, (1.0, 1.0), "pool"))

    def test_noop_delete_publishes_nothing(self):
        maintainer = SnapshotMaintainer(built_engine(), merge_threshold=None)
        version = maintainer.current.version
        assert maintainer.delete(999) is None
        assert maintainer.current.version == version
        assert maintainer.current.buffer_depth == 0

    def test_flush_folds_everything(self):
        engine = built_engine()
        maintainer = SnapshotMaintainer(engine, merge_threshold=None)
        maintainer.add(SpatialObject(310, (8.0, 8.0), "cafe museum"))
        maintainer.delete(1)
        clean = maintainer.flush()
        assert not clean.dirty and clean.buffer_depth == 0
        base = maintainer.base
        assert base is not engine  # copy-on-write: a fresh engine
        assert base.contains(310) and not base.contains(1)
        query = SpatialKeywordQuery.of((8.0, 8.0), ["museum"], 2)
        assert 310 in clean.search(query).oids

    def test_threshold_triggers_background_merge(self):
        maintainer = SnapshotMaintainer(built_engine(), merge_threshold=3)
        for obj in make_objects(3, start=320):
            maintainer.add(obj)
        deadline = threading.Event()
        for _ in range(100):
            if maintainer.merges >= 1 and maintainer.current.buffer_depth == 0:
                break
            deadline.wait(0.05)
        assert maintainer.merges >= 1
        assert maintainer.current.buffer_depth == 0
        assert all(maintainer.base.contains(o) for o in (320, 321, 322))

    def test_merge_failure_loses_no_writes(self):
        maintainer = SnapshotMaintainer(built_engine(), merge_threshold=None)
        maintainer.add(SpatialObject(330, (7.0, 7.0), "cafe"))
        maintainer.delete(2)

        def boom():
            raise RuntimeError("mid-merge crash")

        maintainer.merge_hook = boom
        with pytest.raises(RuntimeError, match="mid-merge"):
            maintainer.flush()
        assert maintainer.merge_failures == 1
        # The buffer was recomposed: both writes still published.
        recovered = maintainer.current
        assert recovered.contains(330) and not recovered.contains(2)
        maintainer.merge_hook = None
        clean = maintainer.flush()
        assert not clean.dirty
        assert maintainer.base.contains(330)
        assert not maintainer.base.contains(2)

    def test_readers_never_block_on_a_merge(self):
        maintainer = SnapshotMaintainer(built_engine(), merge_threshold=None)
        maintainer.add(SpatialObject(340, (6.0, 6.0), "wifi"))
        hold = threading.Event()
        entered = threading.Event()

        def stall():
            entered.set()
            assert hold.wait(10.0)

        maintainer.merge_hook = stall
        merge = threading.Thread(target=maintainer.flush, daemon=True)
        merge.start()
        assert entered.wait(10.0)
        try:
            # The merge is parked mid-fold; reads answer immediately.
            query = SpatialKeywordQuery.of((6.0, 6.0), ["wifi"], 2)
            execution = maintainer.current.search(query)
            assert 340 in execution.oids
        finally:
            hold.set()
            merge.join(10.0)
        assert maintainer.merges == 1


class TestIncrementalMerge:
    """Small frozen buffers fold into a copy of the base, not a rebuild."""

    def test_small_buffer_merges_incrementally(self):
        engine = built_engine()  # 24 objects; ratio 0.25 -> threshold 6
        maintainer = SnapshotMaintainer(engine, merge_threshold=None)
        maintainer.add(SpatialObject(500, (3.0, 3.0), "cafe garden"))
        maintainer.delete(2)
        clean = maintainer.flush()
        assert maintainer.incremental_merges == 1
        assert maintainer.metrics.counter(
            "maintenance.incremental_merges").value == 1
        assert maintainer.base is not engine  # still copy-on-write
        assert maintainer.base.contains(500)
        assert not maintainer.base.contains(2)
        # The old base is untouched by the fold.
        assert engine.contains(2) and not engine.contains(500)
        query = SpatialKeywordQuery.of((3.0, 3.0), ["cafe"], 4)
        expected = [r.obj.oid for r in
                    oracle_search(clean, engine, query)]
        assert [r.obj.oid for r in clean.search(query).results] == expected

    def test_large_buffer_takes_the_rebuild_path(self):
        maintainer = SnapshotMaintainer(built_engine(), merge_threshold=None)
        for obj in make_objects(8, start=510):  # 8 > 24 * 0.25
            maintainer.add(obj)
        maintainer.flush()
        assert maintainer.merges == 1
        assert maintainer.incremental_merges == 0
        assert all(maintainer.base.contains(o) for o in range(510, 518))

    def test_zero_ratio_disables_incremental_merges(self):
        maintainer = SnapshotMaintainer(built_engine(), merge_threshold=None)
        maintainer.incremental_ratio = 0.0
        maintainer.add(SpatialObject(520, (1.0, 1.0), "pool"))
        maintainer.flush()
        assert maintainer.merges == 1
        assert maintainer.incremental_merges == 0
        assert maintainer.base.contains(520)

    @pytest.mark.parametrize("kind", ("ir2", "mir2", "rtree", "iio", "sig"))
    def test_incremental_answers_match_oracle(self, kind):
        engine = built_engine(kind)
        maintainer = SnapshotMaintainer(engine, merge_threshold=None)
        maintainer.add(SpatialObject(530, (2.0, 2.0), "museum wifi"))
        maintainer.add(SpatialObject(531, (2.5, 2.5), "cafe wifi"))
        maintainer.delete(4)
        clean = maintainer.flush()
        assert maintainer.incremental_merges == 1
        for keywords in (["wifi"], ["cafe", "wifi"], ["museum"]):
            query = SpatialKeywordQuery.of((2.0, 2.0), keywords, 5)
            expected = [r.obj.oid for r in
                        oracle_search(clean, engine, query)]
            assert [r.obj.oid for r in clean.search(query).results] \
                == expected

    def test_incremental_merge_failure_loses_no_writes(self):
        maintainer = SnapshotMaintainer(built_engine(), merge_threshold=None)
        maintainer.add(SpatialObject(540, (6.0, 6.0), "garden"))

        def boom():
            raise RuntimeError("mid-merge crash")

        maintainer.merge_hook = boom
        with pytest.raises(RuntimeError, match="mid-merge"):
            maintainer.flush()
        assert maintainer.merge_failures == 1
        assert maintainer.current.contains(540)
        maintainer.merge_hook = None
        maintainer.flush()
        assert maintainer.incremental_merges == 1
        assert maintainer.base.contains(540)

    def test_sharded_base_merges_incrementally(self):
        from repro.shard import ShardedEngine

        engine = ShardedEngine(n_shards=3, partitioner="keyword",
                               index="ir2", signature_bytes=4)
        engine.add_all(make_objects(24))
        engine.build()
        maintainer = SnapshotMaintainer(engine, merge_threshold=None)
        maintainer.add(SpatialObject(550, (4.0, 4.0), "pool wifi"))
        maintainer.delete(3)
        clean = maintainer.flush()
        assert maintainer.incremental_merges == 1
        base = maintainer.base
        assert base is not engine
        assert base.contains(550) and not base.contains(3)
        query = SpatialKeywordQuery.of((4.0, 4.0), ["wifi"], 4)
        expected = [r.obj.oid for r in brute_force_top_k(
            list(clean.objects()), engine.analyzer, query)]
        assert [r.obj.oid for r in clean.search(query).results] == expected


class TestServiceSnapshotMode:
    QUERY = SpatialKeywordQuery.of((0.0, 0.0), ("cafe",), 3)

    def test_read_your_writes_without_rebuild(self):
        with QueryService(built_engine(), workers=2,
                          merge_threshold=None) as service:
            service.add_object(400, (0.0, 0.0), "cafe brandnewterm")
            execution = service.search(
                SpatialKeywordQuery.of((0.0, 0.0), ("brandnewterm",), 1)
            )
            assert execution.oids == [400]
            assert service.delete(400) is True
            execution = service.search(
                SpatialKeywordQuery.of((0.0, 0.0), ("brandnewterm",), 1)
            )
            assert execution.oids == []

    def test_executions_are_version_stamped(self):
        with QueryService(built_engine(), workers=2,
                          merge_threshold=None) as service:
            first = service.search(self.QUERY)
            assert first.engine_version == service.engine_version
            assert first.to_dict()["engine_version"] == first.engine_version
            service.add_object(401, (5.0, 5.0), "pool")
            second = service.search(self.QUERY)
            assert second.engine_version == first.engine_version + 1

    def test_cache_hits_only_within_a_version(self):
        with QueryService(built_engine(), workers=2,
                          merge_threshold=None) as service:
            service.search(self.QUERY)
            service.search(self.QUERY)
            assert service.stats().cache_hits == 1
            service.add_object(402, (5.0, 5.0), "pool")
            service.search(self.QUERY)  # new version: must re-run
            assert service.stats().cache_hits == 1

    def test_batch_group_pins_one_version(self):
        with QueryService(
            built_engine(), workers=4,
            batching=BatchConfig(window_ms=250.0, max_batch=16),
            merge_threshold=None,
        ) as service:
            futures = []
            for i in range(4):
                futures.append(service.submit(
                    SpatialKeywordQuery.of((float(i), 0.0), ("cafe",), 2)
                ))
                # Writers bump the published version while the batch
                # window is still open ...
                service.add_object(410 + i, (9.0, 9.0), "museum")
            versions = {f.result().engine_version for f in futures}
            # ... yet every member of the group answered from the one
            # version the group pinned.
            assert len(versions) == 1

    def test_ranked_query_leaves_dirty_overlay_in_place(self):
        """Ranked queries answer from the overlay instead of flushing."""
        from repro.core.ranking import LinearRanking

        with QueryService(built_engine("ir2"), workers=2,
                          merge_threshold=None) as service:
            service.add_object(420, (0.0, 0.0), "cafe wifi")
            assert service.buffer_depth == 1
            query = SpatialKeywordQuery.of(
                (0.0, 0.0), ("cafe",), 3, ranking=LinearRanking()
            )
            execution = service.search(query)
            assert 420 in execution.oids
            # The buffer stays dirty: no flush stall on the read path.
            assert service.buffer_depth == 1

    def test_mid_merge_save_is_consistent(self, tmp_path):
        with QueryService(built_engine(), workers=2,
                          merge_threshold=None) as service:
            service.add_object(430, (4.0, 4.0), "garden wifi")
            service.delete(3)
            maintainer = service.maintainer
            hold = threading.Event()
            entered = threading.Event()

            def stall():
                entered.set()
                assert hold.wait(10.0)

            maintainer.merge_hook = stall
            merge = threading.Thread(target=maintainer.flush, daemon=True)
            merge.start()
            assert entered.wait(10.0)
            service.add_object(431, (4.5, 4.5), "pool")  # lands mid-merge

            done = {}

            def save():
                done["path"] = service.save(str(tmp_path / "saved"))

            saver = threading.Thread(target=save, daemon=True)
            saver.start()
            hold.set()
            merge.join(10.0)
            saver.join(10.0)
            maintainer.merge_hook = None

        loaded = load_engine(str(tmp_path / "saved"))
        assert loaded.contains(430) and loaded.contains(431)
        assert not loaded.contains(3)

    def test_flush_returns_version_number(self):
        with QueryService(built_engine(), workers=2,
                          merge_threshold=None) as service:
            service.add_object(440, (2.0, 2.0), "cafe")
            version = service.flush()
            assert version == service.engine_version
            assert service.buffer_depth == 0

    def test_rwlock_mode_is_still_available(self):
        with QueryService(built_engine(), workers=2,
                          maintenance=RWLOCK) as service:
            assert service.engine_version is None
            assert service.maintainer is None
            service.add_object(450, (0.0, 0.0), "cafe solo")
            execution = service.search(
                SpatialKeywordQuery.of((0.0, 0.0), ("solo",), 1)
            )
            assert execution.oids == [450]
            assert execution.engine_version is None

    def test_unknown_maintenance_mode_is_rejected(self):
        with pytest.raises(ServiceError, match="maintenance"):
            QueryService(built_engine(), maintenance="eventually")

    def test_constants_exported(self):
        assert SNAPSHOT == "snapshot" and RWLOCK == "rwlock"


class TestVersionedResultCache:
    def put_get_query(self):
        return SpatialKeywordQuery.of((0.0, 0.0), ("cafe",), 2)

    def test_stale_stamp_is_a_miss_and_evicts(self):
        cache = QueryResultCache(capacity=8)
        engine = built_engine()
        query = self.put_get_query()
        execution = engine.search(query)
        cache.put(query, execution, version=7)
        assert cache.get(query, version=7) is not None
        # A reader pinned to version 8 must not see version 7's answer.
        assert cache.get(query, version=8) is None
        # The stale entry was dropped, not kept around.
        assert cache.get(query, version=7) is None

    def test_unversioned_entries_keep_legacy_semantics(self):
        cache = QueryResultCache(capacity=8)
        engine = built_engine()
        query = self.put_get_query()
        cache.put(query, engine.search(query))
        assert cache.get(query) is not None
        generation = cache.generation
        cache.invalidate()
        assert cache.get(query) is None
        assert cache.generation == generation + 1


class TestNoOpMutationRegression:
    """A delete that removed nothing must leave the service untouched."""

    def auto_service(self):
        engine = SpatialKeywordEngine(index="auto", signature_bytes=4)
        engine.add_all(make_objects(24))
        engine.build()
        return QueryService(engine, workers=2, merge_threshold=None)

    def test_noop_delete_keeps_cache_and_stats(self):
        with self.auto_service() as service:
            query = SpatialKeywordQuery.of((0.0, 0.0), ("cafe",), 3)
            service.search(query)  # primes the result + plan caches
            index = service.engine.index
            stats_version = index.stats.version
            cache_generation = service.cache.generation
            plan_cache_size = len(index.planner._cache)

            assert service.delete(999_999) is False

            assert service.cache.generation == cache_generation
            assert index.stats.version == stats_version
            assert len(index.planner._cache) == plan_cache_size
            service.search(query)
            assert service.stats().cache_hits == 1  # still warm

    def test_effective_delete_invalidates(self):
        with self.auto_service() as service:
            query = SpatialKeywordQuery.of((0.0, 0.0), ("cafe",), 3)
            service.search(query)
            cache_generation = service.cache.generation
            assert service.delete(0) is True
            assert service.cache.generation == cache_generation + 1

    def test_engine_level_noop_delete_skips_note_delete(self):
        engine = SpatialKeywordEngine(index="auto", signature_bytes=4)
        engine.add_all(make_objects(24))
        engine.build()
        index = engine.index
        pointer = engine._pointers[0]
        obj = engine.corpus.store.load(pointer)
        assert index.delete_object(pointer, obj) is True
        stats_version = index.stats.version
        grid_total = index.stats.grid.total
        # The second delete removes nothing from any child: the stats
        # version must not bump (that flushes the plan cache) and the
        # density grid must not uncount a point it no longer holds.
        assert index.delete_object(pointer, obj) is False
        assert index.stats.version == stats_version
        assert index.stats.grid.total == grid_total


class TestDensityGridAccounting:
    def test_total_tracks_sum_of_counts(self):
        grid = DensityGrid((0.0, 0.0), (10.0, 10.0), cells_per_dim=4)
        points = [(float(i % 11), float(i % 7)) for i in range(40)]
        for point in points:
            grid.add(point)
        for point in points[::2]:
            grid.remove(point)
        assert grid.total == sum(grid.counts) == 20

    def test_remove_from_empty_cell_raises(self):
        grid = DensityGrid((0.0, 0.0), (10.0, 10.0), cells_per_dim=4)
        grid.add((1.0, 1.0))
        with pytest.raises(ValueError, match="underflow"):
            grid.remove((9.0, 9.0))
        # The failed remove changed nothing.
        assert grid.total == sum(grid.counts) == 1

    def test_clamped_points_stay_exact(self):
        grid = DensityGrid((0.0, 0.0), (10.0, 10.0), cells_per_dim=4)
        grid.add((100.0, 100.0))  # clamps into the far edge cell
        grid.remove((100.0, 100.0))
        assert grid.total == sum(grid.counts) == 0


class TestReadWriteLockSafety:
    def test_read_locked_releases_on_body_exception(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            with lock.read_locked():
                raise RuntimeError("reader died")
        assert lock._readers == 0
        lock.acquire_write()  # would deadlock on a leaked reader
        lock.release_write()

    def test_failed_acquire_cannot_underflow(self):
        class FailingLock(ReadWriteLock):
            def acquire_read(self):
                raise MemoryError("acquire failed")

        lock = FailingLock()
        with pytest.raises(MemoryError):
            with lock.read_locked():
                pass  # pragma: no cover - acquire raised first
        # The context manager never ran release_read for the failed
        # acquire: the count is intact and writers are not wedged.
        assert lock._readers == 0
        ReadWriteLock.acquire_write(lock)
        lock.release_write()
