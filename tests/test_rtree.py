"""Unit tests for the disk-resident R-Tree."""

from __future__ import annotations

import random

import pytest

from repro.errors import TreeInvariantError
from repro.spatial import LinearSplit, Rect, RTree, build_from_layout
from repro.storage import InMemoryBlockDevice, PageStore


def make_tree(capacity=4, dims=2, **kwargs) -> RTree:
    pages = PageStore(InMemoryBlockDevice())
    return RTree(pages, dims=dims, capacity=capacity, **kwargs)


def insert_points(tree, points, start=0):
    for i, point in enumerate(points, start=start):
        tree.insert(i, Rect.from_point(point))


class TestConstruction:
    def test_empty_tree(self):
        tree = make_tree()
        assert tree.height == 1
        assert tree.size == 0
        tree.validate()

    def test_capacity_derived_from_block_size(self):
        pages = PageStore(InMemoryBlockDevice())
        tree = RTree(pages)
        assert tree.capacity == 113  # the paper's fan-out

    def test_capacity_below_two_rejected(self):
        pages = PageStore(InMemoryBlockDevice())
        with pytest.raises(TreeInvariantError):
            RTree(pages, capacity=1)

    def test_min_fill_bounded_by_half_capacity(self):
        tree = make_tree(capacity=10)
        assert 1 <= tree.min_fill <= 5


class TestInsert:
    def test_single_insert(self):
        tree = make_tree()
        tree.insert(7, Rect.from_point((1.0, 2.0)))
        assert tree.size == 1
        entries = list(tree.iter_leaf_entries())
        assert entries[0].child_ref == 7

    def test_fill_one_node_no_split(self):
        tree = make_tree(capacity=4)
        insert_points(tree, [(i, i) for i in range(4)])
        assert tree.height == 1
        tree.validate()

    def test_overflow_splits_root(self):
        tree = make_tree(capacity=4)
        insert_points(tree, [(i, i) for i in range(5)])
        assert tree.height == 2
        tree.validate()

    def test_many_inserts_stay_valid(self):
        tree = make_tree(capacity=4)
        rng = random.Random(0)
        insert_points(
            tree, [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(200)]
        )
        assert tree.size == 200
        tree.validate()

    def test_duplicate_points_allowed(self):
        tree = make_tree(capacity=4)
        insert_points(tree, [(1.0, 1.0)] * 20)
        assert tree.size == 20
        tree.validate()

    def test_dimension_mismatch_rejected(self):
        tree = make_tree(dims=2)
        with pytest.raises(TreeInvariantError):
            tree.insert(0, Rect.from_point((1.0, 2.0, 3.0)))

    def test_rectangles_not_just_points(self):
        tree = make_tree(capacity=4)
        for i in range(10):
            tree.insert(i, Rect((i, i), (i + 2.0, i + 3.0)))
        tree.validate()

    def test_linear_split_variant_builds_valid_tree(self):
        tree = make_tree(capacity=4, split_strategy=LinearSplit())
        rng = random.Random(1)
        insert_points(
            tree, [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(100)]
        )
        tree.validate()

    def test_three_dimensional_tree(self):
        pages = PageStore(InMemoryBlockDevice())
        tree = RTree(pages, dims=3, capacity=4)
        rng = random.Random(2)
        for i in range(60):
            point = (rng.uniform(0, 9), rng.uniform(0, 9), rng.uniform(0, 9))
            tree.insert(i, Rect.from_point(point))
        tree.validate()


class TestDelete:
    def test_delete_existing(self):
        tree = make_tree(capacity=4)
        insert_points(tree, [(i, i) for i in range(10)])
        assert tree.delete(3, Rect.from_point((3.0, 3.0))) is True
        assert tree.size == 9
        refs = {e.child_ref for e in tree.iter_leaf_entries()}
        assert 3 not in refs
        tree.validate()

    def test_delete_missing_returns_false(self):
        tree = make_tree(capacity=4)
        insert_points(tree, [(i, i) for i in range(5)])
        assert tree.delete(99, Rect.from_point((99.0, 99.0))) is False
        assert tree.size == 5

    def test_delete_requires_matching_rect(self):
        tree = make_tree(capacity=4)
        tree.insert(1, Rect.from_point((1.0, 1.0)))
        assert tree.delete(1, Rect.from_point((2.0, 2.0))) is False
        assert tree.delete(1, Rect.from_point((1.0, 1.0))) is True

    def test_delete_all_leaves_empty_valid_tree(self):
        tree = make_tree(capacity=4)
        points = [(float(i), float(i % 7)) for i in range(30)]
        insert_points(tree, points)
        for i, point in enumerate(points):
            assert tree.delete(i, Rect.from_point(point)) is True
        assert tree.size == 0
        assert tree.height == 1
        tree.validate()

    def test_delete_shrinks_root(self):
        tree = make_tree(capacity=4)
        points = [(float(i), 0.0) for i in range(25)]
        insert_points(tree, points)
        initial_height = tree.height
        assert initial_height >= 2
        for i in range(20):
            tree.delete(i, Rect.from_point(points[i]))
        assert tree.height <= initial_height
        tree.validate()

    def test_interleaved_insert_delete(self):
        tree = make_tree(capacity=4)
        rng = random.Random(7)
        live = {}
        next_id = 0
        for _ in range(400):
            if live and rng.random() < 0.4:
                oid = rng.choice(list(live))
                assert tree.delete(oid, Rect.from_point(live.pop(oid)))
            else:
                point = (rng.uniform(0, 50), rng.uniform(0, 50))
                tree.insert(next_id, Rect.from_point(point))
                live[next_id] = point
                next_id += 1
        assert tree.size == len(live)
        tree.validate()
        refs = {e.child_ref for e in tree.iter_leaf_entries()}
        assert refs == set(live)


class TestSearch:
    def test_range_query_matches_brute_force(self):
        tree = make_tree(capacity=4)
        rng = random.Random(3)
        points = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(150)]
        insert_points(tree, points)
        window = Rect((20.0, 20.0), (60.0, 70.0))
        got = sorted(e.child_ref for e in tree.search(window))
        want = sorted(
            i for i, p in enumerate(points) if window.contains_point(p)
        )
        assert got == want

    def test_empty_window(self):
        tree = make_tree(capacity=4)
        insert_points(tree, [(i, i) for i in range(10)])
        window = Rect((1000.0, 1000.0), (1001.0, 1001.0))
        assert list(tree.search(window)) == []


class TestPersistence:
    def test_nodes_roundtrip_through_store(self):
        """A second tree object over the same page store sees everything."""
        pages = PageStore(InMemoryBlockDevice())
        tree = RTree(pages, capacity=4)
        insert_points(tree, [(i, -i) for i in range(25)])
        reopened = RTree.__new__(RTree)
        reopened.pages = pages
        reopened.dims = tree.dims
        reopened.capacity = tree.capacity
        reopened.min_fill = tree.min_fill
        reopened.split_strategy = tree.split_strategy
        reopened.scheme = tree.scheme
        reopened.root_id = tree.root_id
        reopened.height = tree.height
        reopened.size = tree.size
        reopened.bulk_loaded = False
        reopened.validate()
        assert {e.child_ref for e in reopened.iter_leaf_entries()} == set(range(25))

    def test_node_io_is_counted(self):
        tree = make_tree(capacity=4)
        insert_points(tree, [(i, i) for i in range(20)])
        stats = tree.pages.device.stats
        stats.reset()
        list(tree.search(Rect((0.0, 0.0), (100.0, 100.0))))
        assert stats.category_reads("node") > 0

    def test_iter_nodes_uncounted(self):
        tree = make_tree(capacity=4)
        insert_points(tree, [(i, i) for i in range(20)])
        stats = tree.pages.device.stats
        stats.reset()
        count = tree.node_count()
        assert count >= 1
        assert stats.total_accesses == 0


class TestLayoutBuilder:
    def test_explicit_layout(self):
        pages = PageStore(InMemoryBlockDevice())
        layout = (
            "root",
            [
                ("left", [(1, Rect.from_point((0.0, 0.0)), b""), (2, Rect.from_point((1.0, 1.0)), b"")]),
                ("right", [(3, Rect.from_point((10.0, 10.0)), b""), (4, Rect.from_point((11.0, 11.0)), b"")]),
            ],
        )
        tree, names = build_from_layout(pages, layout, capacity=4)
        assert tree.height == 2
        assert tree.size == 4
        assert set(names) == {"root", "left", "right"}
        root = tree.load_node(names["root"])
        assert not root.is_leaf
        assert len(root.entries) == 2
