"""Unit tests for STR bulk loading and insertion building."""

from __future__ import annotations

import random

import pytest

from repro.core import BulkItem, IR2Tree, MIR2Tree, bulk_load, insert_build
from repro.core.schemes import MIR2Scheme
from repro.errors import TreeInvariantError
from repro.spatial import Rect, RTree
from repro.storage import InMemoryBlockDevice, PageStore
from repro.text import HashSignatureFactory, Signature


def items_for(n, seed=0, with_terms=True):
    rng = random.Random(seed)
    items = []
    for i in range(n):
        terms = {f"w{rng.randrange(50)}" for _ in range(5)} if with_terms else set()
        items.append(
            BulkItem(i, Rect.from_point((rng.uniform(0, 100), rng.uniform(0, 100))), terms)
        )
    return items


def fresh_rtree(capacity=8):
    return RTree(PageStore(InMemoryBlockDevice()), capacity=capacity)


class TestBulkLoadRTree:
    def test_all_items_present(self):
        tree = fresh_rtree()
        items = items_for(100)
        bulk_load(tree, items)
        assert tree.size == 100
        refs = sorted(e.child_ref for e in tree.iter_leaf_entries())
        assert refs == list(range(100))
        tree.validate()

    def test_empty_items_noop(self):
        tree = fresh_rtree()
        bulk_load(tree, [])
        assert tree.size == 0
        tree.validate()

    def test_single_item(self):
        tree = fresh_rtree()
        bulk_load(tree, items_for(1))
        assert tree.height == 1
        assert tree.size == 1
        tree.validate()

    def test_exact_capacity_boundary(self):
        tree = fresh_rtree(capacity=8)
        bulk_load(tree, items_for(8), fill=1.0)
        assert tree.height == 1
        tree.validate()

    def test_non_empty_tree_rejected(self):
        tree = fresh_rtree()
        tree.insert(0, Rect.from_point((0.0, 0.0)))
        with pytest.raises(TreeInvariantError):
            bulk_load(tree, items_for(5))

    def test_invalid_fill_rejected(self):
        tree = fresh_rtree()
        with pytest.raises(TreeInvariantError):
            bulk_load(tree, items_for(5), fill=0.0)

    def test_balanced_height(self):
        """STR packing yields logarithmic height."""
        tree = fresh_rtree(capacity=10)
        bulk_load(tree, items_for(500), fill=0.8)
        assert tree.height <= 4
        tree.validate()

    def test_spatial_locality(self):
        """Leaves cover compact regions: sibling MBRs overlap little."""
        tree = fresh_rtree(capacity=10)
        bulk_load(tree, items_for(300, seed=3))
        leaves = [n for n in tree.iter_nodes() if n.is_leaf]
        total_area = sum(leaf.mbr().area() for leaf in leaves)
        universe = Rect((0.0, 0.0), (100.0, 100.0)).area()
        assert total_area < 3 * universe  # packed, not shredded

    def test_supports_deletes_after_load(self):
        tree = fresh_rtree()
        items = items_for(60, seed=4)
        bulk_load(tree, items)
        for item in items[:30]:
            assert tree.delete(item.obj_ptr, item.rect) is True
        tree.validate()
        assert tree.size == 30


class TestBulkLoadSignatures:
    def test_ir2_signatures_match_insert_built(self):
        """Bulk and insert builds give identical root superimpositions."""
        factory = HashSignatureFactory(16)
        items = items_for(80, seed=5)
        bulk_tree = IR2Tree(PageStore(InMemoryBlockDevice()), factory, capacity=8)
        bulk_load(bulk_tree, items)
        insert_tree = IR2Tree(PageStore(InMemoryBlockDevice()), factory, capacity=8)
        insert_build(insert_tree, items)
        bulk_root = bulk_tree._load_uncounted(bulk_tree.root_id).or_signature()
        insert_root = insert_tree._load_uncounted(insert_tree.root_id).or_signature()
        assert bulk_root == insert_root

    def test_mir2_bulk_equals_walk_recomputation(self):
        """The bulk loader's term-union fast path must produce exactly the
        signature the faithful subtree walk would."""
        terms_by_ptr = {}
        items = items_for(60, seed=6)
        for item in items:
            terms_by_ptr[item.obj_ptr] = item.terms
        tree = MIR2Tree(
            PageStore(InMemoryBlockDevice()),
            (4, 8, 16),
            lambda ptr: terms_by_ptr[ptr],
            capacity=8,
        )
        bulk_load(tree, items)
        scheme: MIR2Scheme = tree.mir_scheme
        for node in tree.iter_nodes():
            if node.is_leaf:
                continue
            for entry in node.entries:
                child = tree._load_uncounted(entry.child_ref)
                recomputed = scheme.entry_signature_for_child(tree, child)
                assert entry.signature == recomputed

    def test_plain_rtree_entries_have_empty_signatures(self):
        tree = fresh_rtree()
        bulk_load(tree, items_for(30))
        for node in tree.iter_nodes():
            for entry in node.entries:
                assert entry.signature == b""


class TestInsertBuild:
    def test_equivalent_content(self):
        tree = fresh_rtree()
        items = items_for(50, seed=7)
        insert_build(tree, items)
        assert tree.size == 50
        tree.validate()

    def test_signatures_attached(self):
        factory = HashSignatureFactory(8)
        tree = IR2Tree(PageStore(InMemoryBlockDevice()), factory, capacity=8)
        items = items_for(20, seed=8)
        insert_build(tree, items)
        for entry in tree.iter_leaf_entries():
            assert len(entry.signature) == 8
            item = next(i for i in items if i.obj_ptr == entry.child_ref)
            assert Signature.from_bytes(entry.signature) == factory.for_words(item.terms)
