"""Unit tests for the fault-injection storage layer (repro.storage.faults)."""

from __future__ import annotations

import pytest

from repro import SpatialKeywordEngine
from repro.datasets import figure1_hotels
from repro.errors import (
    DeviceFaultError,
    StorageError,
    TransientDeviceError,
)
from repro.storage import (
    FaultInjectingDevice,
    FaultPlan,
    InMemoryBlockDevice,
    inject_engine_faults,
    retry_transient,
)


def loaded_device(n_blocks=4, fill=0xAB):
    device = InMemoryBlockDevice()
    for block_id in range(n_blocks):
        device.write_block(block_id, bytes([fill]) * device.block_size)
    return device


class TestFaultPlan:
    def test_scripted_read_fault_is_permanent_by_default(self):
        device = FaultInjectingDevice(loaded_device(), fail_read_at=(1,))
        device.read_block(0)  # read #0 passes
        with pytest.raises(DeviceFaultError) as excinfo:
            device.read_block(1)
        assert not isinstance(excinfo.value, TransientDeviceError)
        assert "read #1" in str(excinfo.value)
        assert device.plan.failures_injected == 1

    def test_transient_flag_selects_retryable_error(self):
        device = FaultInjectingDevice(
            loaded_device(), fail_read_at=(0,), transient=True
        )
        with pytest.raises(TransientDeviceError):
            device.read_block(0)

    def test_scripted_write_fault(self):
        device = FaultInjectingDevice(loaded_device(), fail_write_at=(0,))
        with pytest.raises(DeviceFaultError):
            device.write_block(0, b"x")
        device.write_block(1, b"y")  # write #1 passes

    def test_max_failures_budget_then_recovery(self):
        device = FaultInjectingDevice(
            loaded_device(), read_error_rate=1.0, max_failures=2
        )
        for _ in range(2):
            with pytest.raises(DeviceFaultError):
                device.read_block(0)
        # Budget exhausted: the fault has "cleared".
        assert device.read_block(0) == device.inner.read_block(0)
        assert device.plan.failures_injected == 2

    def test_disarm_stops_everything(self):
        plan = FaultPlan(read_error_rate=1.0, write_error_rate=1.0,
                         fail_read_at=(0, 1, 2), bitflip_rate=1.0)
        device = FaultInjectingDevice(loaded_device(), plan)
        plan.disarm()
        assert device.read_block(0) == device.inner.read_block(0)
        device.write_block(0, b"fine")

    def test_seeded_rates_are_deterministic(self):
        def failure_pattern(seed):
            device = FaultInjectingDevice(
                loaded_device(), seed=seed, read_error_rate=0.5
            )
            pattern = []
            for _ in range(32):
                try:
                    device.read_block(0)
                    pattern.append(False)
                except DeviceFaultError:
                    pattern.append(True)
            return pattern

        assert failure_pattern(7) == failure_pattern(7)
        assert failure_pattern(7) != failure_pattern(8)
        assert any(failure_pattern(7))
        assert not all(failure_pattern(7))


class TestTornWritesAndBitFlips:
    def test_torn_write_persists_half_the_block(self):
        inner = loaded_device(1, fill=0x00)
        device = FaultInjectingDevice(inner, torn_write_at=(0,))
        payload = bytes([0xFF]) * device.block_size
        with pytest.raises(DeviceFaultError, match="torn write"):
            device.write_block(0, payload)
        half = device.block_size // 2
        on_disk = inner.read_block(0)
        assert on_disk[:half] == payload[:half]
        assert on_disk[half:] == bytes(half)  # zero-padded tail, not 0xFF

    def test_bitflip_corrupts_exactly_one_bit_silently(self):
        inner = loaded_device(1)
        device = FaultInjectingDevice(inner, bitflip_rate=1.0)
        clean = inner.read_block(0)
        flipped = device.read_block(0)  # no exception
        assert flipped != clean
        diff = [a ^ b for a, b in zip(clean, flipped)]
        changed = [d for d in diff if d]
        assert len(changed) == 1 and bin(changed[0]).count("1") == 1
        assert inner.read_block(0) == clean  # the device itself is untouched
        assert device.plan.bitflips_injected == 1


class TestDeviceWrapping:
    def test_shares_inner_stats_and_counts_once(self):
        inner = loaded_device(3)
        inner.stats.reset()
        device = FaultInjectingDevice(inner)
        assert device.stats is inner.stats
        device.read_block(0)
        device.read_block(1)
        assert inner.stats.total_reads == 2

    def test_uncounted_raw_paths_delegate(self):
        inner = loaded_device(3)
        device = FaultInjectingDevice(inner, read_error_rate=1.0)
        # iter_blocks goes through the raw hooks: no faults, no counts.
        inner.stats.reset()
        blocks = list(device.iter_blocks())
        assert len(blocks) == 3
        assert inner.stats.total_reads == 0

    def test_num_blocks_and_extent_growth(self):
        inner = InMemoryBlockDevice()
        device = FaultInjectingDevice(inner)
        device.write_extent(0, b"z" * (inner.block_size * 2 + 10))
        assert device.num_blocks == inner.num_blocks == 3

    def test_shared_plan_counts_ordinals_across_devices(self):
        plan = FaultPlan(fail_read_at=(2,))
        first = FaultInjectingDevice(loaded_device(), plan)
        second = FaultInjectingDevice(loaded_device(), plan)
        first.read_block(0)   # read #0
        second.read_block(0)  # read #1
        with pytest.raises(DeviceFaultError):
            first.read_block(1)  # read #2 — wherever it lands


class TestRetryTransient:
    def test_retries_transient_until_success_with_backoff(self):
        sleeps = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientDeviceError("blip")
            return "done"

        assert retry_transient(flaky, retries=2, backoff_s=0.01,
                               sleep=sleeps.append) == "done"
        assert sleeps == [0.01, 0.02]  # exponential

    def test_permanent_fault_propagates_immediately(self):
        sleeps = []

        def broken():
            raise DeviceFaultError("dead")

        with pytest.raises(DeviceFaultError):
            retry_transient(broken, retries=5, sleep=sleeps.append)
        assert sleeps == []

    def test_exhausted_budget_raises_the_last_transient(self):
        sleeps = []

        def always():
            raise TransientDeviceError("still down")

        with pytest.raises(TransientDeviceError):
            retry_transient(always, retries=2, sleep=sleeps.append)
        assert len(sleeps) == 2


class TestInjectEngineFaults:
    def build(self):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        engine.add_all(figure1_hotels())
        engine.build()
        return engine

    def test_injected_engine_fails_then_recovers_on_disarm(self):
        engine = self.build()
        baseline = engine.query((30.5, 100.0), ["internet", "pool"], k=2)
        plan = inject_engine_faults(engine, read_error_rate=1.0)
        with pytest.raises(StorageError):
            engine.query((30.5, 100.0), ["internet", "pool"], k=2)
        plan.disarm()
        healed = engine.query((30.5, 100.0), ["internet", "pool"], k=2)
        assert healed.oids == baseline.oids == [7, 2]

    def test_io_accounting_unchanged_under_wrapping(self):
        clean = self.build()
        wrapped = self.build()
        inject_engine_faults(wrapped)  # a no-fault plan: pure pass-through
        clean.reset_io()
        wrapped.reset_io()
        a = clean.query((30.5, 100.0), ["pool"], k=3)
        b = wrapped.query((30.5, 100.0), ["pool"], k=3)
        assert b.oids == a.oids
        assert b.io.total_reads == a.io.total_reads
        assert b.io.random_reads == a.io.random_reads

    def test_every_device_reference_is_repointed(self):
        engine = self.build()
        inject_engine_faults(engine)
        assert isinstance(engine.corpus.device, FaultInjectingDevice)
        assert engine.corpus.store.device is engine.corpus.device
        assert isinstance(engine.index.device, FaultInjectingDevice)
        assert engine.index.pages.device is engine.index.device
