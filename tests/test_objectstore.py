"""Unit tests for the plain-text object file."""

from __future__ import annotations

import pytest

from repro.errors import ObjectNotFoundError, SerializationError
from repro.model import SpatialObject
from repro.storage import InMemoryBlockDevice, ObjectStore
from repro.storage.objectstore import decode_row, encode_row


@pytest.fixture
def store():
    return ObjectStore(InMemoryBlockDevice(block_size=64))


def _obj(oid=1, point=(25.4, -80.1), text="tennis court gift shop"):
    return SpatialObject(oid, point, text)


class TestRowCodec:
    def test_roundtrip(self):
        obj = _obj()
        assert decode_row(encode_row(obj)) == obj

    def test_tabs_and_newlines_sanitized(self):
        obj = _obj(text="a\tb\nc\rd")
        decoded = decode_row(encode_row(obj))
        assert decoded.text == "a b c d"

    def test_high_precision_coordinates_survive(self):
        obj = _obj(point=(1.0 / 3.0, -1e-17))
        assert decode_row(encode_row(obj)).point == obj.point

    def test_three_dimensional_object(self):
        obj = _obj(point=(1.0, 2.0, 3.0))
        assert decode_row(encode_row(obj)).point == (1.0, 2.0, 3.0)

    def test_unicode_text(self):
        obj = _obj(text="café non-ASCII ünïcode")
        assert decode_row(encode_row(obj)).text == obj.text

    def test_empty_text(self):
        obj = _obj(text="")
        assert decode_row(encode_row(obj)).text == ""

    def test_malformed_row_raises(self):
        with pytest.raises(SerializationError):
            decode_row(b"not a row\n")


class TestAppendLoad:
    def test_pointers_advance_by_row_length(self, store):
        p1 = store.append(_obj(1))
        p2 = store.append(_obj(2))
        assert p1 == 0
        assert p2 > p1

    def test_load_returns_object(self, store):
        pointer = store.append(_obj(5, text="sauna pool"))
        assert store.load(pointer) == _obj(5, text="sauna pool")

    def test_load_counts_blocks_and_objects(self, store):
        long_text = "word " * 50  # spans several 64-byte blocks
        pointer = store.append(_obj(1, text=long_text))
        store.device.stats.reset()
        store.load(pointer)
        stats = store.device.stats
        assert stats.objects_loaded == 1
        assert stats.total_reads == store.blocks_for(pointer)
        assert stats.random_reads == 1  # remainder sequential

    def test_load_row_spanning_blocks(self, store):
        store.append(_obj(1, text="x" * 100))
        pointer = store.append(_obj(2, text="y" * 100))
        assert store.load(pointer).text == "y" * 100

    def test_load_bad_pointer(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.load(10)

    def test_bulk_append(self, store):
        pointers = store.bulk_append([_obj(i) for i in range(5)])
        assert len(pointers) == 5
        assert len(store) == 5

    def test_blocks_for_short_row(self, store):
        pointer = store.append(_obj(1, text="ab"))
        assert store.blocks_for(pointer) == 1


class TestDeleteAndIteration:
    def test_delete_tombstones(self, store):
        pointer = store.append(_obj(3))
        assert store.delete(3) == pointer
        assert len(store) == 0
        with pytest.raises(ObjectNotFoundError):
            store.pointer_of(3)

    def test_delete_unknown(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.delete(99)

    def test_deleted_object_fails_load(self, store):
        pointer = store.append(_obj(3))
        store.delete(3)
        with pytest.raises(ObjectNotFoundError):
            store.load(pointer)

    def test_iter_objects_skips_deleted(self, store):
        store.append(_obj(1))
        store.append(_obj(2))
        store.delete(1)
        oids = [obj.oid for _, obj in store.iter_objects()]
        assert oids == [2]

    def test_iter_objects_uncounted(self, store):
        store.append(_obj(1))
        store.device.stats.reset()
        list(store.iter_objects())
        assert store.device.stats.total_accesses == 0

    def test_pointer_of(self, store):
        pointer = store.append(_obj(9))
        assert store.pointer_of(9) == pointer

    def test_size_accounting(self, store):
        store.append(_obj(1))
        assert store.size_bytes > 0
        assert store.size_mb == pytest.approx(store.size_bytes / (1024 * 1024))
