"""Randomized differential harness for the cost-based adaptive planner.

The planner may only ever change *where* a query runs, never *what* it
answers: every ``auto`` answer is produced by a real candidate index, so
the answer-equivalence oracle of :mod:`tests.test_differential` carries
over unchanged.  This suite pits adaptive engines — the default and
alternate candidate sets, single and {1, 2, 5}-shard sharded — against
the index-free brute-force oracle and every fixed index kind, over
seeded randomized corpora and query mixes: point, area, and ranked
queries, rare- and common-keyword selectivity bands, and k sweeps.
Distance-first answers must be **byte-identical** ``(distance, oid)``
lists everywhere, ties included.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import ConcurrentLoadGenerator
from repro.core.engine import SpatialKeywordEngine
from repro.core.query import SpatialKeywordQuery
from repro.core.ranking import DistanceDecayRanking
from repro.core.search_general import brute_force_ranked
from repro.shard import ShardedEngine

from tests.test_differential import (
    assert_equivalent,
    build_engines,
    corpus_objects,
    oracle_matches,
)

#: Candidate sets under test: the default pairing, the full pool, and a
#: scan-only pool (no signature-bearing tree, so no ranked support).
CANDIDATE_SETS = {
    "auto": None,
    "auto-all": ("ir2", "mir2", "rtree", "iio", "sig"),
    "auto-scan": ("iio", "sig", "rtree"),
}

SHARD_COUNTS = (1, 2, 5)


def build_auto_engines(objects, signature_bytes=8):
    """One adaptive engine per candidate set, over the same object list."""
    engines = {}
    for name, candidates in CANDIDATE_SETS.items():
        engine = SpatialKeywordEngine(
            index="auto", signature_bytes=signature_bytes,
            auto_kinds=candidates,
        )
        engine.add_all(objects)
        engine.build()
        engines[name] = engine
    return engines


def assert_search_equivalent(engines, objects, query):
    """Every engine's ``search(query)`` equals the brute-force oracle.

    Unlike :func:`tests.test_differential.assert_equivalent` this goes
    through ``search`` with the query object itself, so area queries
    keep their area.  The oracle ranks by distance to ``query.target``
    (the area for area queries), cut by ``(distance, oid)`` — the same
    canonical order every execution path implements.
    """
    analyzer = next(iter(engines.values())).corpus.analyzer
    matches = oracle_matches(objects, analyzer, query)
    expected = matches[: min(query.k, len(matches))]
    for name, engine in engines.items():
        execution = engine.search(query)
        got = [(r.distance, r.obj.oid) for r in execution.results]
        label = f"{name} on {query.keywords} k={query.k}"
        assert got == expected, f"answer not byte-identical: {label}"


class TestPlannerDifferentialFast:
    """The always-on slice: auto vs oracle vs every fixed kind."""

    @pytest.fixture(scope="class")
    def setup(self):
        objects = corpus_objects(150, seed=11)
        engines = dict(build_engines(objects, signature_bytes=4))
        engines.update(build_auto_engines(objects, signature_bytes=4))
        workload = ConcurrentLoadGenerator(
            objects, engines["ir2"].corpus.analyzer, seed=5
        )
        return objects, engines, workload

    @pytest.mark.parametrize("num_keywords,k", [(1, 5), (2, 3), (3, 10)])
    def test_point_queries_agree(self, setup, num_keywords, k):
        objects, engines, workload = setup
        for query in workload.queries(4, num_keywords, k):
            assert_equivalent(engines, objects, query)

    @pytest.mark.parametrize("band", [(0.0, 0.03), (0.10, 1.0)],
                             ids=["rare", "common"])
    def test_selectivity_bands_agree(self, setup, band):
        """Rare keywords route toward IIO, common toward trees; both
        selectivity regimes must stay answer-identical."""
        objects, engines, workload = setup
        lo, hi = band
        for query in workload.frequency_band_queries(4, 2, 5, lo, hi):
            assert_equivalent(engines, objects, query)

    @pytest.mark.parametrize("k", [1, 3, 25])
    def test_area_queries_agree(self, setup, k):
        objects, engines, workload = setup
        for extent in (0.05, 0.3):
            query = workload.area_query(1, k, extent_fraction=extent)
            assert_search_equivalent(engines, objects, query)

    def test_zero_match_keywords(self, setup):
        objects, engines, _ = setup
        query = SpatialKeywordQuery.of((0.0, 0.0), ["zzznope", "qqqgone"], 5)
        assert_equivalent(engines, objects, query)
        for engine in engines.values():
            assert engine.query((0.0, 0.0), ["zzznope"], k=5).results == []

    def test_k_larger_than_matches(self, setup):
        objects, engines, workload = setup
        query = workload.query(num_keywords=2, k=10_000)
        assert_equivalent(engines, objects, query)

    def test_every_auto_answer_comes_from_a_real_candidate(self, setup):
        objects, engines, workload = setup
        for query in workload.queries(6, 2, 5):
            for name in CANDIDATE_SETS:
                engine = engines[name]
                execution = engine.search(query)
                assert execution.algorithm.startswith("AUTO:")
                strategy = execution.plan["strategy"]
                assert strategy in engine.index.candidates


class TestPlannerRankedDifferential:
    """Ranked routing: auto's general top-k equals oracle and fixed kinds."""

    @pytest.fixture(scope="class")
    def setup(self):
        objects = corpus_objects(120, seed=17)
        fixed = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        fixed.add_all(objects)
        fixed.build()
        auto = SpatialKeywordEngine(
            index="auto", signature_bytes=8,
            auto_kinds=("ir2", "mir2", "iio"),
        )
        auto.add_all(objects)
        auto.build()
        workload = ConcurrentLoadGenerator(
            objects, fixed.corpus.analyzer, seed=29
        )
        ranking = DistanceDecayRanking(half_distance=40.0)
        return objects, fixed, auto, workload, ranking

    def test_ranked_matches_fixed_and_oracle(self, setup):
        objects, fixed, auto, workload, ranking = setup
        for base in workload.queries(6, 2, 5):
            point, keywords, k = base.point, base.keywords, base.k
            got = auto.query_ranked(point, keywords, k=k, ranking=ranking)
            assert got.algorithm.startswith("AUTO:")
            assert got.plan["strategy"] in ("ir2", "mir2")
            want = fixed.query_ranked(point, keywords, k=k, ranking=ranking)
            assert (
                [(r.obj.oid, round(r.score, 9)) for r in got.results]
                == [(r.obj.oid, round(r.score, 9)) for r in want.results]
            )
            oracle = brute_force_ranked(
                objects, fixed.corpus.analyzer, fixed.corpus.vocabulary,
                base.with_ranking(ranking), ranking,
            )
            assert (
                [round(r.score, 9) for r in got.results]
                == [round(r.score, 9) for r in oracle[: len(got.results)]]
            )

    def test_ranked_without_capable_candidate_fails_loudly(self, setup):
        objects, _, _, workload, ranking = setup
        from repro.errors import QueryError

        scan_only = SpatialKeywordEngine(
            index="auto", signature_bytes=8, auto_kinds=("iio", "sig"),
        )
        scan_only.add_all(objects)
        scan_only.build()
        base = workload.query(2, 5)
        with pytest.raises(QueryError):
            scan_only.query_ranked(base.point, base.keywords, k=5,
                                   ranking=ranking)


class TestShardedPlannerDifferential:
    """Per-shard routing keeps scatter-gather answers byte-identical."""

    @pytest.fixture(scope="class")
    def sharded_world(self):
        objects = corpus_objects(180, seed=31)
        reference = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        reference.add_all(objects)
        reference.build()
        engines = {"reference-ir2": reference}
        for n_shards in SHARD_COUNTS:
            sharded = ShardedEngine(
                n_shards=n_shards, index="auto", signature_bytes=8
            )
            sharded.add_all(objects)
            sharded.build()
            engines[f"auto-x{n_shards}"] = sharded
        workload = ConcurrentLoadGenerator(
            objects, reference.corpus.analyzer, seed=3
        )
        yield objects, engines, workload
        for name, engine in engines.items():
            if isinstance(engine, ShardedEngine):
                engine.close()

    @pytest.mark.parametrize("num_keywords,k", [(1, 4), (2, 8), (3, 2)])
    def test_point_queries_agree(self, sharded_world, num_keywords, k):
        objects, engines, workload = sharded_world
        for query in workload.queries(4, num_keywords, k):
            assert_equivalent(engines, objects, query)

    def test_area_queries_agree(self, sharded_world):
        objects, engines, workload = sharded_world
        for k in (2, 10):
            query = workload.area_query(1, k, extent_fraction=0.2)
            assert_search_equivalent(engines, objects, query)

    def test_zero_match_and_oversized_k(self, sharded_world):
        objects, engines, workload = sharded_world
        assert_equivalent(
            engines, objects,
            SpatialKeywordQuery.of((0.0, 0.0), ["zzznope"], k=3),
        )
        assert_equivalent(engines, objects, workload.query(2, k=5_000))

    def test_merged_plan_covers_searched_shards(self, sharded_world):
        objects, engines, workload = sharded_world
        query = workload.query(1, 5)
        for n_shards in SHARD_COUNTS:
            engine = engines[f"auto-x{n_shards}"]
            execution = engine.search(query)
            plan = execution.plan
            assert plan is not None
            per_shard = plan["per_shard"]
            assert 1 <= len(per_shard) <= n_shards
            for strategy in per_shard.values():
                assert strategy in ("ir2", "iio")
            assert plan["strategy"] == "+".join(
                sorted(set(per_shard.values()))
            )


@pytest.mark.slow
class TestPlannerDifferentialSweep:
    """The full randomized sweep: seeds x sizes x candidate sets x shards."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("n_objects", [120, 400])
    def test_sweep(self, seed, n_objects):
        objects = corpus_objects(n_objects, seed=seed)
        engines = dict(build_engines(objects, signature_bytes=8))
        engines.update(build_auto_engines(objects, signature_bytes=8))
        sharded = []
        for n_shards in SHARD_COUNTS:
            engine = ShardedEngine(
                n_shards=n_shards, index="auto", signature_bytes=8
            )
            engine.add_all(objects)
            engine.build()
            engines[f"auto-x{n_shards}"] = engine
            sharded.append(engine)
        try:
            workload = ConcurrentLoadGenerator(
                objects, engines["ir2"].corpus.analyzer, seed=seed + 100
            )
            for num_keywords in (1, 2, 3):
                for k in (1, 5, 20):
                    for query in workload.queries(2, num_keywords, k):
                        assert_equivalent(engines, objects, query)
            for band in ((0.0, 0.03), (0.10, 1.0)):
                for query in workload.frequency_band_queries(2, 2, 5, *band):
                    assert_equivalent(engines, objects, query)
            for extent in (0.05, 0.3):
                query = workload.area_query(2, 5, extent_fraction=extent)
                assert_search_equivalent(engines, objects, query)
            assert_equivalent(
                engines, objects,
                SpatialKeywordQuery.of((0.0, 0.0), ["zzznope"], k=4),
            )
            assert_equivalent(
                engines, objects, workload.query(2, k=10 * n_objects)
            )
        finally:
            for engine in sharded:
                engine.close()
