"""Unit tests for incremental NN [HS99] and branch-and-bound k-NN [RKV95]."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.spatial import (
    NNTrace,
    Rect,
    RTree,
    brute_force_nearest,
    incremental_nearest,
    k_nearest,
)
from repro.storage import InMemoryBlockDevice, PageStore


def build_tree(points, capacity=4):
    tree = RTree(PageStore(InMemoryBlockDevice()), capacity=capacity)
    for i, point in enumerate(points):
        tree.insert(i, Rect.from_point(point))
    return tree


class TestIncrementalNearest:
    def test_orders_by_distance(self):
        rng = random.Random(5)
        points = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(80)]
        tree = build_tree(points)
        query = (50.0, 50.0)
        result = list(incremental_nearest(tree, query))
        distances = [d for _, d in result]
        assert distances == sorted(distances)
        assert len(result) == 80

    def test_matches_brute_force_order(self):
        rng = random.Random(6)
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(50)]
        tree = build_tree(points)
        query = (3.0, 3.0)
        got = [(ref, round(d, 9)) for ref, d in incremental_nearest(tree, query)]
        from repro.model import SpatialObject

        objects = [SpatialObject(i, p, "") for i, p in enumerate(points)]
        want = [(oid, round(d, 9)) for oid, d in brute_force_nearest(objects, query)]
        # Distances must agree pairwise (ties may permute ids).
        assert [d for _, d in got] == [d for _, d in want]

    def test_incremental_laziness(self):
        """Pulling one neighbor must not read the whole tree."""
        rng = random.Random(8)
        points = [(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(500)]
        tree = build_tree(points, capacity=8)
        stats = tree.pages.device.stats
        stats.reset()
        first = next(incremental_nearest(tree, (500.0, 500.0)))
        assert first is not None
        assert stats.total_reads < tree.node_count()

    def test_entry_filter_prunes(self):
        points = [(float(i), 0.0) for i in range(20)]
        tree = build_tree(points)
        # Filter out even object pointers at the leaf level.
        def only_odd(entry, node):
            return not node.is_leaf or entry.child_ref % 2 == 1

        refs = [ref for ref, _ in incremental_nearest(tree, (0.0, 0.0), only_odd)]
        assert refs and all(ref % 2 == 1 for ref in refs)

    def test_empty_tree_yields_nothing(self):
        tree = build_tree([])
        assert list(incremental_nearest(tree, (0.0, 0.0))) == []

    def test_trace_records_queue_activity(self):
        tree = build_tree([(0.0, 0.0), (1.0, 1.0)])
        trace = NNTrace()
        list(incremental_nearest(tree, (0.0, 0.0), trace=trace))
        dequeues = trace.of_kind("dequeue")
        assert dequeues[0][0] == "node"  # root first
        assert sum(1 for kind, _, _ in dequeues if kind == "object") == 2

    def test_tie_objects_before_nodes(self):
        """At equal distance an object is reported before a node expands."""
        points = [(5.0, 5.0)] * 3
        tree = build_tree(points, capacity=2)
        result = list(incremental_nearest(tree, (5.0, 5.0)))
        assert len(result) == 3
        assert all(d == 0.0 for _, d in result)


class TestKNearest:
    def test_agrees_with_incremental(self):
        rng = random.Random(9)
        points = [(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(100)]
        tree = build_tree(points)
        query = (25.0, 25.0)
        inc = list(itertools.islice(incremental_nearest(tree, query), 10))
        bb = k_nearest(tree, query, 10)
        assert [round(d, 9) for _, d in inc] == [round(d, 9) for _, d in bb]

    def test_k_zero(self):
        tree = build_tree([(0.0, 0.0)])
        assert k_nearest(tree, (0.0, 0.0), 0) == []

    def test_k_larger_than_size(self):
        tree = build_tree([(0.0, 0.0), (1.0, 0.0)])
        assert len(k_nearest(tree, (0.0, 0.0), 10)) == 2

    def test_results_sorted(self):
        rng = random.Random(10)
        points = [(rng.uniform(0, 9), rng.uniform(0, 9)) for _ in range(30)]
        tree = build_tree(points)
        result = k_nearest(tree, (4.0, 4.0), 7)
        distances = [d for _, d in result]
        assert distances == sorted(distances)


class TestBruteForceOracle:
    def test_sorted_with_oid_tiebreak(self):
        from repro.model import SpatialObject

        objects = [
            SpatialObject(2, (1.0, 0.0), ""),
            SpatialObject(1, (1.0, 0.0), ""),
            SpatialObject(3, (0.5, 0.0), ""),
        ]
        ranked = brute_force_nearest(objects, (0.0, 0.0))
        assert [oid for oid, _ in ranked] == [3, 1, 2]
