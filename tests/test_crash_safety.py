"""Crash-safety of the atomic save protocol and corruption detection.

The contract under test (docs/STORAGE.md, "Durability and fault model"):
a save interrupted at *any* fault point leaves a directory that either
loads the previous complete state, loads the new complete state, or
raises a typed error — never a silently mixed or corrupt engine.  And
``verify_engine`` detects every corruption these tests inject.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import SpatialKeywordEngine
from repro.datasets import figure1_hotels
from repro.errors import DatasetError, PersistError
from repro.persist import (
    load_engine,
    save_engine,
    saving_fault_hook,
    verify_engine,
)
from repro.shard import ShardedEngine
from repro.storage import CrashTimer, FaultPlan, SimulatedCrash

QUERY = ((30.5, 100.0), ["internet", "pool"], 2)
OLD_OIDS = [7, 2]
NEW_OIDS = [99, 7]


def build_single(kind="ir2", extra=False):
    engine = SpatialKeywordEngine(index=kind, signature_bytes=8)
    engine.add_all(figure1_hotels())
    if extra:
        # The marker object that distinguishes new state from old.
        engine.add_object(99, (30.5, 100.0), "internet pool crashsafe")
    engine.build()
    return engine


def build_sharded(n_shards=3, extra=False):
    engine = ShardedEngine(n_shards=n_shards, index="ir2", signature_bytes=8)
    engine.add_all(figure1_hotels())
    if extra:
        engine.add(
            type(figure1_hotels()[0])(99, (30.5, 100.0), "internet pool crashsafe")
        )
    engine.build()
    return engine


def answer(engine):
    point, keywords, k = QUERY
    return engine.query(point, keywords, k=k).oids


def fault_points(builder, target):
    """One dry run enumerating the labels a save passes through."""
    timer = CrashTimer()
    with saving_fault_hook(timer):
        save_engine(builder(extra=True), str(target))
    return timer.points


def crash_save_at(builder, target, crash_at):
    """Attempt a save that dies at the ``crash_at``-th fault point."""
    timer = CrashTimer(crash_at=crash_at)
    with pytest.raises(SimulatedCrash):
        with saving_fault_hook(timer):
            save_engine(builder(extra=True), str(target))
    return timer.points[-1]


def assert_previous_state_or_typed_error(target, point):
    """The acceptance criterion, point by point."""
    try:
        reloaded = load_engine(str(target))
    except DatasetError:
        # Typed failure is acceptable — only the swap window may produce
        # it when a previous state existed.
        assert point == "swapped-out", (
            f"crash at {point!r} lost the previous state"
        )
        return
    oids = answer(reloaded)
    if point in ("swapped-in", "cleaned-up"):
        assert oids == NEW_OIDS, f"crash at {point!r} gave {oids}"
    else:
        assert oids == OLD_OIDS, (
            f"crash at {point!r} leaked partial new state: {oids}"
        )
    # Whatever loaded must also pass verification (leftover staging /
    # trash siblings are warnings, not errors).
    report = verify_engine(str(target))
    assert report["ok"], report


class TestCrashMidSaveSingle:
    def test_every_fault_point_is_safe(self, tmp_path):
        probe = fault_points(build_single, tmp_path / "probe")
        assert "staged" in probe and "manifest-written" in probe
        for crash_at in range(len(probe)):
            target = tmp_path / f"crash-{crash_at}"
            save_engine(build_single(), str(target))
            assert answer(load_engine(str(target))) == OLD_OIDS
            point = crash_save_at(build_single, target, crash_at)
            assert_previous_state_or_typed_error(target, point)

    def test_first_save_crash_leaves_no_loadable_garbage(self, tmp_path):
        probe = fault_points(build_single, tmp_path / "probe")
        for crash_at in range(len(probe)):
            target = tmp_path / f"fresh-{crash_at}"
            point = crash_save_at(build_single, target, crash_at)
            if point == "swapped-in":
                assert answer(load_engine(str(target))) == NEW_OIDS
            else:
                with pytest.raises(DatasetError):
                    load_engine(str(target))

    def test_crashed_save_is_reported_by_verify(self, tmp_path):
        target = tmp_path / "eng"
        save_engine(build_single(), str(target))
        crash_save_at(build_single, target, 0)
        report = verify_engine(str(target))
        assert report["ok"]  # the old state is intact...
        assert any(".tmp-" in w for w in report["warnings"])  # ...but flagged

    @pytest.mark.slow
    @pytest.mark.parametrize("kind", ["rtree", "iio", "mir2", "sig"])
    def test_every_fault_point_is_safe_all_kinds(self, tmp_path, kind):
        def builder(extra=False):
            return build_single(kind, extra=extra)

        probe = fault_points(builder, tmp_path / "probe")
        for crash_at in range(len(probe)):
            target = tmp_path / f"crash-{crash_at}"
            save_engine(builder(), str(target))
            point = crash_save_at(builder, target, crash_at)
            assert_previous_state_or_typed_error(target, point)


class TestCrashMidSaveSharded:
    def test_every_fault_point_is_safe(self, tmp_path):
        probe = fault_points(build_sharded, tmp_path / "probe")
        assert any(p.startswith("shard-") for p in probe)
        for crash_at in range(len(probe)):
            target = tmp_path / f"crash-{crash_at}"
            save_engine(build_sharded(), str(target))
            point = crash_save_at(build_sharded, target, crash_at)
            assert_previous_state_or_typed_error(target, point)


def corrupt_torn(path):
    """Keep only the first half of a file — a torn write at OS level."""
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(size // 2, 1))


def corrupt_bitflip(path):
    """Flip one deterministic bit, via the fault plan's own corruptor."""
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(FaultPlan(seed=5).flip_bit(data))


@pytest.mark.parametrize("corrupt", [corrupt_torn, corrupt_bitflip],
                         ids=["torn", "bitflip"])
class TestCorruptionDetection:
    def saved_sharded(self, tmp_path):
        target = tmp_path / "eng"
        save_engine(build_sharded(), str(target))
        return target

    def every_file(self, target):
        for root, _, names in os.walk(target):
            for name in sorted(names):
                yield os.path.join(root, name)

    def test_any_corrupt_file_fails_load_and_verify(self, tmp_path, corrupt):
        pristine = self.saved_sharded(tmp_path)
        for victim in self.every_file(pristine):
            target = tmp_path / f"c-{os.path.basename(victim)}-{hash(victim) % 997}"
            save_engine(build_sharded(), str(target))
            rel = os.path.relpath(victim, pristine)
            corrupt(os.path.join(target, rel))
            with pytest.raises(DatasetError):  # PersistError is one too
                load_engine(str(target))
            report = verify_engine(str(target))
            assert not report["ok"], f"verify missed corruption in {rel}"
            assert any(row["status"] == "error" for row in report["checks"])


class TestTypedManifestErrors:
    def test_torn_manifest_is_dataset_error_naming_the_path(self, tmp_path):
        target = tmp_path / "eng"
        save_engine(build_single(), str(target))
        corrupt_torn(target / "manifest.json")
        with pytest.raises(DatasetError, match="manifest.json"):
            load_engine(str(target))

    def test_non_object_manifest_is_dataset_error(self, tmp_path):
        target = tmp_path / "eng"
        save_engine(build_single(), str(target))
        (target / "manifest.json").write_text(json.dumps([1, 2, 3]))
        with pytest.raises(DatasetError, match="not a JSON object"):
            load_engine(str(target))

    def test_missing_manifest_key_is_dataset_error(self, tmp_path):
        target = tmp_path / "eng"
        save_engine(build_single(), str(target))
        manifest = json.loads((target / "manifest.json").read_text())
        del manifest["index"]
        del manifest["files"]  # keep digests from firing first
        (target / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="corrupt engine manifest"):
            load_engine(str(target))

    def test_missing_shard_directory(self, tmp_path):
        target = tmp_path / "eng"
        save_engine(build_sharded(), str(target))
        import shutil

        shutil.rmtree(target / "shard-001")
        with pytest.raises(PersistError, match="missing"):
            load_engine(str(target))
        report = verify_engine(str(target))
        assert not report["ok"]


class TestAtomicReplaceRegression:
    def test_resave_with_fewer_shards_leaves_no_stale_dirs(self, tmp_path):
        target = tmp_path / "eng"
        save_engine(build_sharded(n_shards=3), str(target))
        assert (target / "shard-002").is_dir()
        save_engine(build_sharded(n_shards=2), str(target))
        assert not (target / "shard-002").exists()
        reloaded = load_engine(str(target))
        assert reloaded.n_shards == 2
        assert answer(reloaded) == OLD_OIDS
        assert verify_engine(str(target))["ok"]

    def test_planted_stale_shard_dir_is_flagged_by_verify(self, tmp_path):
        target = tmp_path / "eng"
        save_engine(build_sharded(n_shards=2), str(target))
        stale = target / "shard-009"
        stale.mkdir()
        (stale / "objects.dat").write_bytes(b"junk")
        report = verify_engine(str(target))
        assert not report["ok"]
        assert any("stale shard" in row["detail"] for row in report["checks"])
