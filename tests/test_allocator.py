"""Unit and property tests for the contiguous extent allocator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.storage import ExtentAllocator


class TestAllocate:
    def test_sequential_allocations_are_contiguous(self):
        alloc = ExtentAllocator()
        assert alloc.allocate(3) == 0
        assert alloc.allocate(2) == 3
        assert alloc.tail == 5

    def test_start_offset_respected(self):
        alloc = ExtentAllocator(start=10)
        assert alloc.allocate(1) == 10

    def test_zero_length_rejected(self):
        alloc = ExtentAllocator()
        with pytest.raises(AllocationError):
            alloc.allocate(0)

    def test_negative_start_rejected(self):
        with pytest.raises(AllocationError):
            ExtentAllocator(start=-1)


class TestFree:
    def test_freed_extent_is_reused_first_fit(self):
        alloc = ExtentAllocator()
        first = alloc.allocate(4)
        alloc.allocate(4)
        alloc.free(first, 4)
        assert alloc.allocate(4) == first

    def test_smaller_allocation_splits_free_extent(self):
        alloc = ExtentAllocator()
        first = alloc.allocate(4)
        alloc.allocate(1)
        alloc.free(first, 4)
        assert alloc.allocate(2) == first
        assert alloc.allocate(2) == first + 2

    def test_adjacent_frees_coalesce(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(2)
        b = alloc.allocate(2)
        alloc.allocate(1)  # keeps the tail busy
        alloc.free(a, 2)
        alloc.free(b, 2)
        assert alloc.allocate(4) == a  # only possible if coalesced

    def test_tail_trimmed_when_last_extent_freed(self):
        alloc = ExtentAllocator()
        alloc.allocate(2)
        b = alloc.allocate(3)
        alloc.free(b, 3)
        assert alloc.tail == 2

    def test_double_free_rejected(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(2)
        alloc.allocate(2)
        alloc.free(a, 2)
        with pytest.raises(AllocationError):
            alloc.free(a, 2)

    def test_free_outside_range_rejected(self):
        alloc = ExtentAllocator()
        alloc.allocate(2)
        with pytest.raises(AllocationError):
            alloc.free(0, 5)

    def test_counters(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(3)
        alloc.allocate(2)
        alloc.free(a, 3)
        assert alloc.free_blocks == 3
        assert alloc.allocated_blocks == 2


class TestReallocate:
    def test_shrink_in_place(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(4)
        assert alloc.reallocate(a, 4, 2) == a
        # The shrunk-off blocks touched the tail, so the tail is trimmed.
        assert alloc.tail == 2
        assert alloc.free_blocks == 0

    def test_shrink_in_middle_keeps_free_blocks(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(4)
        alloc.allocate(1)  # pins the tail
        assert alloc.reallocate(a, 4, 2) == a
        assert alloc.free_blocks == 2

    def test_grow_at_tail(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(2)
        assert alloc.reallocate(a, 2, 5) == a
        assert alloc.tail == 5

    def test_grow_into_adjacent_free_extent(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(2)
        b = alloc.allocate(3)
        alloc.allocate(1)
        alloc.free(b, 3)
        assert alloc.reallocate(a, 2, 4) == a

    def test_grow_relocates_when_blocked(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(2)
        alloc.allocate(2)  # blocks in-place growth
        new_start = alloc.reallocate(a, 2, 4)
        assert new_start != a
        assert alloc.allocate(2) == a  # old extent became reusable

    def test_same_size_noop(self):
        alloc = ExtentAllocator()
        a = alloc.allocate(2)
        assert alloc.reallocate(a, 2, 2) == a


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 8)),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_property_no_live_extent_overlap(ops):
    """Live extents never overlap and stay within [0, tail)."""
    alloc = ExtentAllocator()
    live: list[tuple[int, int]] = []
    for op, length in ops:
        if op == "alloc" or not live:
            start = alloc.allocate(length)
            live.append((start, length))
        else:
            start, freed_length = live.pop(length % len(live))
            alloc.free(start, freed_length)
        spans = sorted(live)
        for (s1, l1), (s2, _) in zip(spans, spans[1:]):
            assert s1 + l1 <= s2, "overlapping live extents"
        if spans:
            assert spans[-1][0] + spans[-1][1] <= alloc.tail
    assert alloc.allocated_blocks == sum(l for _, l in live)
