"""Unit tests for the page store (node id -> extent mapping)."""

from __future__ import annotations

import pytest

from repro.errors import PageNotFoundError
from repro.storage import InMemoryBlockDevice, PageStore


@pytest.fixture
def pages():
    return PageStore(InMemoryBlockDevice(block_size=64))


class TestIds:
    def test_new_node_ids_are_unique(self, pages):
        ids = {pages.new_node_id() for _ in range(10)}
        assert len(ids) == 10

    def test_membership(self, pages):
        node_id = pages.new_node_id()
        assert node_id not in pages
        pages.write(node_id, b"data")
        assert node_id in pages
        assert len(pages) == 1
        assert pages.node_ids() == [node_id]


class TestReadWrite:
    def test_roundtrip(self, pages):
        node_id = pages.new_node_id()
        pages.write(node_id, b"hello node")
        assert pages.read(node_id)[:10] == b"hello node"

    def test_multiblock_node(self, pages):
        node_id = pages.new_node_id()
        payload = bytes(range(256)) * 2  # 512 bytes over 64-byte blocks
        pages.write(node_id, payload)
        assert pages.extent_of(node_id)[1] == 8
        assert pages.read(node_id)[: len(payload)] == payload

    def test_read_costs_extent_pattern(self, pages):
        node_id = pages.new_node_id()
        pages.write(node_id, b"x" * 200)  # 4 blocks
        pages.device.stats.reset()
        pages.read(node_id)
        assert pages.device.stats.random_reads == 1
        assert pages.device.stats.sequential_reads == 3

    def test_read_unknown_raises(self, pages):
        with pytest.raises(PageNotFoundError):
            pages.read(12345)

    def test_rewrite_same_size_keeps_extent(self, pages):
        node_id = pages.new_node_id()
        pages.write(node_id, b"a" * 100)
        extent = pages.extent_of(node_id)
        pages.write(node_id, b"b" * 100)
        assert pages.extent_of(node_id) == extent

    def test_grow_reallocates_contiguously(self, pages):
        first = pages.new_node_id()
        pages.write(first, b"a" * 60)
        blocker = pages.new_node_id()
        pages.write(blocker, b"b" * 60)
        pages.write(first, b"c" * 200)  # cannot grow in place
        start, length = pages.extent_of(first)
        assert length == 4
        assert pages.read(first)[:200] == b"c" * 200

    def test_category_accounting(self, pages):
        node_id = pages.new_node_id()
        pages.write(node_id, b"x")
        pages.read(node_id)
        assert pages.device.stats.category_reads("node") == 1


class TestDelete:
    def test_delete_frees_blocks_for_reuse(self, pages):
        a = pages.new_node_id()
        pages.write(a, b"a" * 100)
        start_a = pages.extent_of(a)[0]
        b = pages.new_node_id()
        pages.write(b, b"b" * 100)
        pages.delete(a)
        assert a not in pages
        c = pages.new_node_id()
        pages.write(c, b"c" * 100)
        assert pages.extent_of(c)[0] == start_a  # reused

    def test_delete_unknown_raises(self, pages):
        with pytest.raises(PageNotFoundError):
            pages.delete(7)

    def test_used_blocks_tracks_live_nodes(self, pages):
        a = pages.new_node_id()
        pages.write(a, b"x" * 100)  # 2 blocks
        b = pages.new_node_id()
        pages.write(b, b"x" * 30)  # 1 block
        assert pages.used_blocks == 3
        pages.delete(a)
        assert pages.used_blocks == 1
        assert pages.size_bytes == 64
