"""Unit tests for the combined ranking functions."""

from __future__ import annotations

import pytest

from repro.core import DistanceDecayRanking, LinearRanking, validate_monotonicity
from repro.errors import QueryError


class TestDistanceDecay:
    def test_half_distance_halves(self):
        ranking = DistanceDecayRanking(half_distance=10.0)
        assert ranking(10.0, 4.0) == pytest.approx(2.0)

    def test_zero_distance_keeps_full_score(self):
        ranking = DistanceDecayRanking(half_distance=10.0)
        assert ranking(0.0, 4.0) == 4.0

    def test_monotone(self):
        validate_monotonicity(DistanceDecayRanking(half_distance=3.0))

    def test_invalid_half_distance(self):
        with pytest.raises(QueryError):
            DistanceDecayRanking(half_distance=0.0)


class TestLinearRanking:
    def test_blend(self):
        ranking = LinearRanking(alpha=0.5, max_distance=10.0)
        assert ranking(5.0, 0.8) == pytest.approx(0.5 * 0.5 + 0.5 * 0.8)

    def test_distance_clamped_beyond_max(self):
        ranking = LinearRanking(alpha=1.0, max_distance=10.0)
        assert ranking(50.0, 0.0) == 0.0  # never negative

    def test_monotone(self):
        validate_monotonicity(LinearRanking(alpha=0.3, max_distance=100.0))

    def test_alpha_bounds(self):
        with pytest.raises(QueryError):
            LinearRanking(alpha=1.5)

    def test_max_distance_positive(self):
        with pytest.raises(QueryError):
            LinearRanking(max_distance=0.0)


class TestValidateMonotonicity:
    def test_rejects_distance_increasing(self):
        with pytest.raises(QueryError):
            validate_monotonicity(lambda d, ir: d + ir)

    def test_rejects_ir_decreasing(self):
        with pytest.raises(QueryError):
            validate_monotonicity(lambda d, ir: -d - ir)

    def test_accepts_constant(self):
        validate_monotonicity(lambda d, ir: 0.0)
