"""Keyword-aware partitioning and shard routing: the PR-9 acceptance suite.

Covers the coordinator-side keyword routing end to end:

* :class:`~repro.shard.KeywordAwarePartitioner` — term-vector clustering
  seeded from the kd split: balance cap, serialization round trip,
  points-only fallback, registry wiring;
* :class:`~repro.shard.KeywordSummary` — the per-shard Bloom filter: no
  false negatives, conjunctive/disjunctive routing tests, staleness
  accounting, JSON round trip;
* the differential harness — a keyword-partitioned
  :class:`~repro.shard.ShardedEngine` must answer every query kind
  (point, area, ranked, zero-match) tie-aware equivalently to a single
  engine over the same corpus, for every index kind and shard count;
* fan-out accounting — selective queries skip shards *before* any shard
  I/O, surfaced via ``pruned_by_keywords`` in per-shard reports, the
  ``shard.fanout.pruned_by_keywords`` counter, and trace spans; and the
  keyword partitioner never fans out wider than the spatial ones;
* summary maintenance — live inserts tighten the owning shard's filter,
  enough effective deletes trigger a rebuild;
* persistence — summaries ride in the sharded manifest; manifests
  written before the field existed load fine and rebuild summaries.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.engine import SpatialKeywordEngine
from repro.core.query import SpatialKeywordQuery
from repro.core.ranking import LinearRanking
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.model import SpatialObject
from repro.persist import load_engine, save_engine
from repro.shard import (
    KeywordAwarePartitioner,
    KeywordSummary,
    ShardedEngine,
    make_partitioner,
    partitioner_from_dict,
)
from repro.spatial.geometry import Rect, target_point_distance

EPS = 1e-9

KINDS = ("ir2", "mir2", "rtree", "iio", "sig")
SHARD_COUNTS = (1, 2, 5)

#: Disjoint term themes; objects of one theme share no keywords with any
#: other theme, so a clustering partitioner can isolate them perfectly.
THEMES = (
    ("espresso", "latte", "roast"),
    ("sushi", "ramen", "tempura"),
    ("taco", "salsa", "churro"),
    ("bagel", "lox", "schmear"),
)


def corpus_objects(n_objects, seed, vocabulary=300, avg_words=8, clusters=5):
    config = DatasetConfig(
        name=f"routing-{n_objects}-{seed}",
        n_objects=n_objects,
        vocabulary_size=vocabulary,
        avg_unique_words=avg_words,
        clusters=clusters,
        seed=seed,
    )
    return SpatialTextDatasetGenerator(config).generate()


def themed_objects(per_theme: int = 40) -> list[SpatialObject]:
    """``len(THEMES)`` spatially-interleaved single-theme populations.

    Spatial position carries no signal about the theme (all themes share
    the same grid), so a purely spatial partitioner cannot separate them
    — keyword routing has to do the work.
    """
    objects = []
    for t, theme in enumerate(THEMES):
        for i in range(per_theme):
            oid = t * per_theme + i
            point = (float((oid * 7) % 40), float((oid * 13) % 40))
            words = [theme[i % len(theme)], theme[(i + 1) % len(theme)]]
            objects.append(SpatialObject(oid, point, " ".join(words)))
    return objects


def build_sharded(objects, kind, n_shards, **kwargs):
    engine = ShardedEngine(n_shards=n_shards, index=kind,
                           signature_bytes=4, **kwargs)
    engine.add_all(objects)
    engine.build()
    return engine


def assert_tie_equivalent(execution, objects, analyzer, query):
    """Tie-aware equivalence against the index-free oracle."""
    terms = analyzer.query_terms(query.keywords)
    matches = sorted(
        (target_point_distance(obj.point, query.target), obj.oid)
        for obj in objects
        if analyzer.contains_all(obj.text, terms)
    )
    expected_n = min(query.k, len(matches))
    expected_dists = [d for d, _ in matches[:expected_n]]
    true_distance = dict((oid, d) for d, oid in matches)
    kth = expected_dists[-1] if expected_n else 0.0
    expected_prefix = {oid for d, oid in matches[:expected_n] if d < kth - EPS}
    got = [(r.distance, r.obj.oid) for r in execution.results]
    assert len(got) == expected_n
    oids = [oid for _, oid in got]
    assert len(set(oids)) == len(oids), "duplicate results"
    for (distance, oid), expected in zip(got, expected_dists):
        assert distance == pytest.approx(expected, abs=EPS)
        assert oid in true_distance
        assert distance == pytest.approx(true_distance[oid], abs=EPS)
    prefix = {oid for d, oid in got if d < kth - EPS}
    assert prefix == expected_prefix, "pre-tie prefix differs"


def shards_searched(execution) -> int:
    return sum(1 for r in execution.shards if not r["pruned"])


def shards_keyword_pruned(execution) -> int:
    return sum(1 for r in execution.shards if r.get("pruned_by_keywords"))


# ---------------------------------------------------------------------------
# Partitioner
# ---------------------------------------------------------------------------


class TestKeywordAwarePartitioner:
    def test_registry_and_ranges(self):
        part = make_partitioner("keyword", 4)
        assert isinstance(part, KeywordAwarePartitioner)
        objects = themed_objects()
        part.fit_objects(objects)
        for obj in objects:
            assert 0 <= part.assign_object(obj) < 4
        # Points-only API still works (kd fallback inside).
        assert 0 <= part.assign((0.0, 0.0)) < 4

    def test_concentrates_themes_better_than_kd(self):
        # Refinement is a local search under a balance cap, so perfect
        # one-theme-per-shard isolation is not guaranteed; what matters
        # for routing is that each theme touches strictly fewer shards
        # than the spatial seed spreads it across.
        objects = themed_objects()
        keyword = KeywordAwarePartitioner(len(THEMES))
        keyword.fit_objects(objects)
        kd = make_partitioner("kd", len(THEMES))
        kd.fit([o.point for o in objects])
        for theme in THEMES:
            themed = [o for o in objects if o.text.split()[0] in theme]
            spread = {keyword.assign_object(o) for o in themed}
            kd_spread = {kd.assign(o.point) for o in themed}
            assert len(spread) <= 2, f"theme {theme} split across {spread}"
            assert len(spread) < len(kd_spread)

    def test_balance_cap_holds(self):
        # Every object carries the same single term: term overlap pulls
        # everything toward one shard, so only the cap keeps balance.
        objects = [
            SpatialObject(i, (float(i % 11), float(i % 7)), "monoculture")
            for i in range(120)
        ]
        part = KeywordAwarePartitioner(4)
        part.fit_objects(objects)
        counts = [0] * 4
        for obj in objects:
            counts[part.assign_object(obj)] += 1
        cap = -(-len(objects) // 4 * 13 // 10)  # ceil(n/shards * 1.3)
        assert max(counts) <= cap

    def test_dict_round_trip_preserves_routing_state(self):
        objects = themed_objects()
        part = KeywordAwarePartitioner(4)
        part.fit_objects(objects)
        clone = partitioner_from_dict(json.loads(json.dumps(part.to_dict())))
        assert isinstance(clone, KeywordAwarePartitioner)
        assert clone.to_dict() == part.to_dict()
        # Objects not seen at fit time route identically (existing
        # members are carried by the shard corpora, not re-assigned).
        for oid, point, text in [
            (9999, (3.0, 3.0), "sushi tempura"),
            (9998, (30.0, 10.0), "espresso churro"),
            (9997, (1.0, 1.0), ""),
        ]:
            fresh = SpatialObject(oid, point, text)
            assert clone.assign_object(fresh) == part.assign_object(fresh)

    def test_points_only_fit_falls_back_to_kd(self):
        points = [(float(i), float(i % 13)) for i in range(100)]
        part = KeywordAwarePartitioner(4)
        part.fit(points)
        assignments = {part.assign(p) for p in points}
        assert assignments <= set(range(4))
        # Objects with no recognizable terms route spatially too.
        blank = SpatialObject(1, (2.0, 2.0), "")
        assert part.assign_object(blank) == part.assign((2.0, 2.0))


# ---------------------------------------------------------------------------
# Summary
# ---------------------------------------------------------------------------


class TestKeywordSummary:
    def test_no_false_negatives(self):
        summary = KeywordSummary()
        terms = [f"word{i}" for i in range(500)]
        for term in terms:
            summary.add_terms([term])
        assert all(summary.may_contain(t) for t in terms)
        assert summary.may_contain_all(terms[:10])
        assert summary.may_contain_any(["nope", terms[0]])

    def test_absent_terms_prune(self):
        summary = KeywordSummary()
        summary.add_terms(["espresso", "latte"])
        assert not summary.may_contain("zzznope")
        assert not summary.may_contain_all(["espresso", "zzznope"])
        assert not summary.may_contain_any(["zzznope", "qqqnada"])

    def test_empty_query_terms_never_prune(self):
        summary = KeywordSummary()
        assert summary.may_contain_all([])
        assert summary.may_contain_any([])

    def test_staleness_and_rebuild(self):
        summary = KeywordSummary()
        summary.add_terms(["espresso"])
        summary.note_delete()
        assert summary.stale_deletes == 1
        assert summary.may_contain("espresso")  # bits never clear per-doc
        summary.rebuild([["sushi"], ["ramen"]])
        assert summary.stale_deletes == 0
        assert not summary.may_contain("espresso")
        assert summary.may_contain("sushi") and summary.may_contain("ramen")

    def test_json_round_trip(self):
        summary = KeywordSummary(length_bytes=64, bits_per_word=2, seed=7)
        summary.add_terms(["espresso", "latte", "roast"])
        summary.note_delete()
        clone = KeywordSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert clone.bits == summary.bits
        assert clone.stale_deletes == 1
        assert clone.factory.length_bytes == 64
        for term in ("espresso", "latte", "roast", "zzznope"):
            assert clone.may_contain(term) == summary.may_contain(term)

    def test_copy_is_independent(self):
        summary = KeywordSummary()
        summary.add_terms(["espresso"])
        clone = summary.copy()
        clone.add_terms(["sushi"])
        assert not summary.may_contain("sushi")
        assert clone.may_contain("espresso")


# ---------------------------------------------------------------------------
# Differential: keyword-partitioned sharded engine vs the oracle
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def routing_corpus():
    return corpus_objects(150, seed=23)


class TestKeywordPartitionedEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_point_queries_match_oracle(self, routing_corpus, kind, n_shards):
        objects = routing_corpus
        with build_sharded(objects, kind, n_shards,
                           partitioner="keyword") as sharded:
            analyzer = sharded.analyzer
            terms = sorted(sharded._global_vocabulary().terms())
            for point, keywords, k in [
                ((50.0, 50.0), [terms[0]], 5),
                ((10.0, 90.0), [terms[1], terms[2]], 3),
                ((0.0, 0.0), ["zzznope"], 5),
            ]:
                query = SpatialKeywordQuery.of(point, keywords, k)
                assert_tie_equivalent(
                    sharded.search(query), objects, analyzer, query
                )

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_matches_single_engine_answers(self, routing_corpus, n_shards):
        objects = routing_corpus
        single = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        single.add_all(objects)
        single.build()
        with build_sharded(objects, "ir2", n_shards,
                           partitioner="keyword") as sharded:
            terms = sorted(sharded._global_vocabulary().terms())
            for point, keywords, k in [
                ((20.0, 20.0), [terms[0]], 4),
                ((80.0, 30.0), [terms[3]], 6),
                ((50.0, 50.0), [terms[0], terms[4]], 5),
                ((50.0, 50.0), ["zzznope"], 5),
            ]:
                query = SpatialKeywordQuery.of(point, keywords, k)
                got = [(r.obj.oid, r.distance)
                       for r in sharded.search(query).results]
                want = [(r.obj.oid, r.distance)
                        for r in single.search(query).results]
                assert got == want, (point, keywords, k)

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_area_queries_match_oracle(self, routing_corpus, n_shards):
        objects = routing_corpus
        with build_sharded(objects, "ir2", n_shards,
                           partitioner="keyword") as sharded:
            terms = sorted(sharded._global_vocabulary().terms())
            query = SpatialKeywordQuery.of_area(
                Rect((0.0, 0.0), (60.0, 60.0)), [terms[0]], 8
            )
            assert_tie_equivalent(
                sharded.search(query), objects, sharded.analyzer, query
            )

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_ranked_queries_match_single_engine(self, routing_corpus,
                                                n_shards):
        objects = routing_corpus
        single = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        single.add_all(objects)
        single.build()
        with build_sharded(objects, "ir2", n_shards,
                           partitioner="keyword") as sharded:
            terms = sorted(sharded._global_vocabulary().terms())
            ranking = LinearRanking(max_distance=200.0)
            for keywords in ([terms[0]], [terms[1], terms[2]], ["zzznope"]):
                query = SpatialKeywordQuery.of(
                    (50.0, 50.0), keywords, 6, ranking=ranking
                )
                got = sorted(
                    (round(r.score, 9), r.obj.oid)
                    for r in sharded.search(query).results
                )
                want = sorted(
                    (round(r.score, 9), r.obj.oid)
                    for r in single.search(query).results
                )
                assert got == want, keywords


# ---------------------------------------------------------------------------
# Fan-out accounting
# ---------------------------------------------------------------------------


class TestKeywordFanout:
    def test_selective_query_skips_shards(self):
        from repro.obs import MetricsRegistry

        objects = themed_objects()
        with build_sharded(objects, "ir2", len(THEMES),
                           partitioner="keyword",
                           metrics=MetricsRegistry()) as sharded:
            execution = sharded.query((20.0, 20.0), ["espresso"], k=5)
            assert shards_keyword_pruned(execution) >= 1
            assert shards_searched(execution) < len(THEMES)
            # Pruning is loss-free: the answers match the oracle.
            query = SpatialKeywordQuery.of((20.0, 20.0), ["espresso"], 5)
            assert_tie_equivalent(
                execution, objects, sharded.analyzer, query
            )
            pruned = sharded.metrics.counter(
                "shard.fanout.pruned_by_keywords").value
            assert pruned >= 1

    def test_zero_match_query_prunes_everywhere(self):
        objects = themed_objects()
        with build_sharded(objects, "ir2", len(THEMES),
                           partitioner="keyword") as sharded:
            execution = sharded.query((20.0, 20.0), ["zzznope"], k=5)
            assert execution.results == []
            assert shards_keyword_pruned(execution) == len(THEMES)
            assert shards_searched(execution) == 0

    def test_ubiquitous_term_is_never_keyword_pruned(self):
        # One term present in every shard: keyword routing cannot prune
        # (no false negatives), so every nonempty shard is consulted.
        objects = [
            SpatialObject(o.oid, o.point, o.text + " everywhere")
            for o in themed_objects()
        ]
        with build_sharded(objects, "ir2", len(THEMES),
                           partitioner="keyword") as sharded:
            execution = sharded.query((20.0, 20.0), ["everywhere"], k=3)
            assert shards_keyword_pruned(execution) == 0
            assert execution.results

    def test_ranked_prunes_only_all_absent_shards(self):
        objects = themed_objects()
        with build_sharded(objects, "ir2", len(THEMES),
                           partitioner="keyword") as sharded:
            ranking = LinearRanking(max_distance=100.0)
            # One real theme term + one nonsense term: shards holding
            # espresso still score (disjunctive test), the others prune.
            query = SpatialKeywordQuery.of(
                (20.0, 20.0), ["espresso", "zzznope"], 5, ranking=ranking
            )
            execution = sharded.search(query)
            assert execution.results  # partial matches still rank
            assert 1 <= shards_keyword_pruned(execution) < len(THEMES)

    def test_keyword_fanout_never_exceeds_spatial(self):
        objects = themed_objects()
        queries = [
            SpatialKeywordQuery.of((20.0, 20.0), [theme[0]], 5)
            for theme in THEMES
        ]
        fanout = {}
        for partitioner in ("kd", "keyword"):
            with build_sharded(objects, "ir2", len(THEMES),
                               partitioner=partitioner) as sharded:
                fanout[partitioner] = sum(
                    shards_searched(sharded.search(q)) for q in queries
                )
        assert fanout["keyword"] <= fanout["kd"]
        # On this themed corpus the clustering must strictly win.
        assert fanout["keyword"] < fanout["kd"]

    def test_report_rows_and_trace_carry_the_outcome(self):
        objects = themed_objects()
        with build_sharded(objects, "ir2", len(THEMES),
                           partitioner="keyword") as sharded:
            execution = sharded.query((20.0, 20.0), ["sushi"], k=4)
            for row in execution.shards:
                assert "pruned_by_keywords" in row
                if row["pruned_by_keywords"]:
                    assert row["pruned"]
            payload = execution.to_dict()
            json.dumps(payload)
            assert payload["shards"] == execution.shards


# ---------------------------------------------------------------------------
# Summary maintenance on the live write path
# ---------------------------------------------------------------------------


class TestSummaryMaintenance:
    def test_live_insert_tightens_owning_shard(self):
        objects = themed_objects()
        with build_sharded(objects, "ir2", len(THEMES),
                           partitioner="keyword") as sharded:
            before = [
                s is not None and s.may_contain("xylograph")
                for s in sharded.summaries
            ]
            assert not any(before)
            sharded.add_object(9000, (5.0, 5.0), "xylograph espresso")
            owner = sharded.shard_of(9000)
            summary = sharded.summaries[owner]
            assert summary.may_contain("xylograph")
            execution = sharded.query((5.0, 5.0), ["xylograph"], k=2)
            assert execution.oids == [9000]
            # Every other shard is keyword-pruned for the new term.
            assert shards_keyword_pruned(execution) == len(THEMES) - 1

    def test_enough_deletes_rebuild_the_summary(self):
        objects = themed_objects()
        with build_sharded(objects, "ir2", len(THEMES),
                           partitioner="keyword") as sharded:
            # Delete every document mentioning "roast", shard by shard.
            roast_shards = {
                shard_id
                for shard_id, shard in enumerate(sharded.shards)
                if any("roast" in o.text.split() for o in shard.objects())
            }
            assert roast_shards
            for shard_id in roast_shards:
                assert sharded.summaries[shard_id].may_contain("roast")
                roast_oids = [
                    obj.oid
                    for obj in sharded.shards[shard_id].objects()
                    if "roast" in obj.text.split()
                ]
                assert len(roast_oids) >= 8  # crosses SUMMARY_STALE_MIN
                for oid in roast_oids:
                    assert sharded.delete(oid)
                summary = sharded.summaries[shard_id]
                assert not summary.may_contain("roast")
                assert summary.stale_deletes < len(roast_oids)
            # Queries for the gone term now prune every shard.
            execution = sharded.query((20.0, 20.0), ["roast"], k=5)
            assert execution.results == []
            assert shards_keyword_pruned(execution) == len(THEMES)

    def test_build_recomputes_summaries(self):
        engine = ShardedEngine(n_shards=2, partitioner="keyword",
                               index="ir2", signature_bytes=4)
        engine.add_all(themed_objects(per_theme=10))
        engine.build()
        with engine:
            assert all(s is not None for s in engine.summaries)
            assert any(
                s.may_contain("espresso") for s in engine.summaries
            )


# ---------------------------------------------------------------------------
# Persistence: summaries in the manifest, legacy manifests without them
# ---------------------------------------------------------------------------


class TestRoutingPersistence:
    def test_round_trip_preserves_summaries_and_pruning(self, tmp_path):
        directory = str(tmp_path / "engine")
        objects = themed_objects()
        with build_sharded(objects, "ir2", len(THEMES),
                           partitioner="keyword") as sharded:
            ref = sharded.query((20.0, 20.0), ["espresso"], k=5)
            bits = [s.bits for s in sharded.summaries]
            save_engine(sharded, directory)
        manifest = json.load(open(os.path.join(directory, "manifest.json")))
        assert manifest["partitioner"]["kind"] == "keyword"
        assert len(manifest["summaries"]) == len(THEMES)
        reloaded = load_engine(directory)
        with reloaded:
            assert [s.bits for s in reloaded.summaries] == bits
            got = reloaded.query((20.0, 20.0), ["espresso"], k=5)
            assert got.oids == ref.oids
            assert shards_keyword_pruned(got) == shards_keyword_pruned(ref)

    def test_legacy_manifest_without_summaries_loads(self, tmp_path):
        directory = str(tmp_path / "engine")
        objects = themed_objects()
        with build_sharded(objects, "ir2", len(THEMES),
                           partitioner="keyword") as sharded:
            ref = sharded.query((20.0, 20.0), ["sushi"], k=5)
            save_engine(sharded, directory)
        # Rewrite the manifest as a pre-summary writer would have: the
        # field is additive, digests only cover the shard manifests.
        path = os.path.join(directory, "manifest.json")
        manifest = json.load(open(path))
        del manifest["summaries"]
        with open(path, "w") as fh:
            json.dump(manifest, fh)
        reloaded = load_engine(directory)
        with reloaded:
            # Summaries were rebuilt from the shard corpora: routing
            # prunes exactly as before the round trip.
            assert all(s is not None for s in reloaded.summaries)
            got = reloaded.query((20.0, 20.0), ["sushi"], k=5)
            assert got.oids == ref.oids
            assert shards_keyword_pruned(got) == shards_keyword_pruned(ref)
