"""Tests for the experiment harness (small scale, fast)."""

from __future__ import annotations

import pytest

from repro.bench import ExperimentContext, get_context, run_sweep
from repro.bench.harness import MetricsRow, bench_scale, queries_per_point
from repro.bench.workloads import with_k


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(
        "restaurants", scale=0.001, signature_bytes=8, algorithms=("IIO", "IR2")
    )


class TestContext:
    def test_builds_requested_algorithms_only(self, context):
        assert set(context.indexes) == {"IIO", "IR2"}

    def test_io_reset_after_build(self, context):
        # reset_io ran at build time; any residue would distort queries.
        for index in context.indexes.values():
            index.device.stats.reset()
        assert all(
            index.device.stats.total_accesses == 0
            for index in context.indexes.values()
        )

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            get_context("zoos")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            ExperimentContext("hotels", 0.001, 8, algorithms=("BTREE",))

    def test_context_cache_reuses(self):
        a = get_context("restaurants", signature_bytes=8, scale=0.001, algorithms=("IIO",))
        b = get_context("restaurants", signature_bytes=8, scale=0.001, algorithms=("IIO",))
        assert a is b


class TestMeasure:
    def test_metrics_row_fields(self, context):
        queries = context.workload.queries(3, 2, 5)
        row = context.measure("IR2", queries)
        assert row.simulated_ms >= 0
        assert row.random_accesses >= 1
        assert row.results_returned >= 0
        assert set(MetricsRow.METRICS) <= set(vars(row))

    def test_iio_flat_in_k(self, context):
        base = context.workload.queries(3, 2, 10)
        low = context.measure("IIO", with_k(base, 1))
        high = context.measure("IIO", with_k(base, 50))
        assert low.random_accesses == high.random_accesses


class TestSweep:
    def test_tables_cover_all_metrics(self, context):
        base = context.workload.queries(2, 2, 10)
        result = run_sweep(
            context, "unit", "k", (1, 5), lambda k: with_k(base, k)
        )
        assert set(result.tables) == set(MetricsRow.METRICS)
        table = result.table("random_accesses")
        assert [value for value, _ in table.rows] == [1, 5]
        assert len(table.column("IR2")) == 2
        rendered = result.render()
        assert "unit" in rendered
        markdown = result.render_markdown()
        assert "###" in markdown


class TestEnvKnobs:
    def test_bench_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert bench_scale() == 0.02

    def test_bench_scale_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert bench_scale() == 0.5

    def test_bench_scale_invalid_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        assert bench_scale() == 0.02
        monkeypatch.setenv("REPRO_SCALE", "-2")
        assert bench_scale() == 0.02

    def test_queries_per_point(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUERIES", raising=False)
        assert queries_per_point() == 8
        monkeypatch.setenv("REPRO_QUERIES", "3")
        assert queries_per_point() == 3
