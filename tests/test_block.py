"""Unit tests for the block devices (in-memory and file-backed)."""

from __future__ import annotations

import pytest

from repro.errors import BlockOutOfRangeError, BlockSizeError
from repro.storage import FileBlockDevice, InMemoryBlockDevice


class TestInMemoryDevice:
    def test_write_then_read_roundtrip(self):
        device = InMemoryBlockDevice(block_size=64)
        device.write_block(0, b"hello")
        data = device.read_block(0)
        assert data[:5] == b"hello"
        assert len(data) == 64  # zero padded

    def test_write_appends_blocks(self):
        device = InMemoryBlockDevice(block_size=64)
        device.write_block(0, b"a")
        device.write_block(3, b"b")  # grows with zero blocks in between
        assert device.num_blocks == 4
        assert device.read_block(2) == b"\x00" * 64

    def test_read_out_of_range(self):
        device = InMemoryBlockDevice(block_size=64)
        with pytest.raises(BlockOutOfRangeError):
            device.read_block(0)

    def test_write_negative_block(self):
        device = InMemoryBlockDevice(block_size=64)
        with pytest.raises(BlockOutOfRangeError):
            device.write_block(-1, b"x")

    def test_oversized_payload_rejected(self):
        device = InMemoryBlockDevice(block_size=8)
        with pytest.raises(BlockSizeError):
            device.write_block(0, b"123456789")

    def test_invalid_block_size(self):
        with pytest.raises(BlockSizeError):
            InMemoryBlockDevice(block_size=0)

    def test_accounting_goes_through_stats(self):
        device = InMemoryBlockDevice(block_size=64)
        device.write_block(0, b"a", "node")
        device.read_block(0, "node")
        assert device.stats.total_writes == 1
        assert device.stats.total_reads == 1
        assert device.stats.category_reads("node") == 1

    def test_size_properties(self):
        device = InMemoryBlockDevice(block_size=1024)
        device.write_block(9, b"z")
        assert device.size_bytes == 10 * 1024
        assert device.size_mb == pytest.approx(10 / 1024)


class TestExtents:
    def test_write_extent_chunks_payload(self):
        device = InMemoryBlockDevice(block_size=8)
        written = device.write_extent(0, b"0123456789abcdef0")
        assert written == 3
        assert device.num_blocks == 3

    def test_read_extent_concatenates(self):
        device = InMemoryBlockDevice(block_size=8)
        device.write_extent(0, b"0123456789abcdef")
        data = device.read_extent(0, 2)
        assert data == b"0123456789abcdef"

    def test_extent_costs_one_random_plus_sequential(self):
        device = InMemoryBlockDevice(block_size=8)
        device.write_extent(0, b"x" * 32)
        device.stats.reset()
        device.read_extent(0, 4)
        assert device.stats.random_reads == 1
        assert device.stats.sequential_reads == 3

    def test_write_empty_extent_still_one_block(self):
        device = InMemoryBlockDevice(block_size=8)
        assert device.write_extent(0, b"") == 1

    def test_blocks_needed(self):
        device = InMemoryBlockDevice(block_size=8)
        assert device.blocks_needed(0) == 1
        assert device.blocks_needed(8) == 1
        assert device.blocks_needed(9) == 2


class TestFileDevice:
    def test_roundtrip_through_real_file(self, tmp_path):
        path = str(tmp_path / "blocks.dat")
        with FileBlockDevice(path, block_size=32) as device:
            device.write_block(0, b"persistent")
            device.write_block(2, b"tail")
            assert device.read_block(0)[:10] == b"persistent"
        # Reopen and verify persistence.
        with FileBlockDevice(path, block_size=32) as device:
            assert device.num_blocks == 3
            assert device.read_block(2)[:4] == b"tail"

    def test_partial_file_padded_to_block_boundary(self, tmp_path):
        path = tmp_path / "ragged.dat"
        path.write_bytes(b"123")  # not a multiple of the block size
        with FileBlockDevice(str(path), block_size=32) as device:
            assert device.num_blocks == 1
            assert device.read_block(0)[:3] == b"123"

    def test_accounting_matches_memory_device(self, tmp_path):
        memory = InMemoryBlockDevice(block_size=16)
        disk = FileBlockDevice(str(tmp_path / "d.dat"), block_size=16)
        for target in (memory, disk):
            target.write_extent(0, b"a" * 40)
            target.stats.reset()
            target.read_extent(0, 3)
            target.read_block(0)
        assert memory.stats.random_reads == disk.stats.random_reads
        assert memory.stats.sequential_reads == disk.stats.sequential_reads
        disk.close()

    def test_iter_blocks_does_not_count(self):
        device = InMemoryBlockDevice(block_size=8)
        device.write_extent(0, b"x" * 24)
        device.stats.reset()
        blocks = list(device.iter_blocks())
        assert len(blocks) == 3
        assert device.stats.total_accesses == 0
