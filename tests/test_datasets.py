"""Tests for the synthetic dataset generators and TSV files."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DatasetConfig,
    SpatialTextDatasetGenerator,
    figure1_hotels,
    hotels_config,
    iter_tsv,
    load_tsv,
    restaurants_config,
    save_tsv,
    synthetic_word,
)
from repro.errors import DatasetError
from repro.text.analyzer import DEFAULT_ANALYZER


class TestSyntheticWord:
    def test_distinct_indices_distinct_words(self):
        words = [synthetic_word(i) for i in range(5_000)]
        assert len(set(words)) == 5_000

    def test_words_are_tokenizable(self):
        for i in (0, 10, 999, 54_000):
            word = synthetic_word(i)
            assert list(DEFAULT_ANALYZER.tokens(word)) == [word]


class TestGenerator:
    def _generate(self, **overrides):
        defaults = dict(
            name="t", n_objects=400, vocabulary_size=800, avg_unique_words=12,
            seed=5,
        )
        defaults.update(overrides)
        return SpatialTextDatasetGenerator(DatasetConfig(**defaults)).generate()

    def test_object_count(self):
        assert len(self._generate()) == 400

    def test_deterministic_for_seed(self):
        a = self._generate()
        b = self._generate()
        assert a == b

    def test_seed_changes_output(self):
        a = self._generate(seed=5)
        b = self._generate(seed=6)
        assert a != b

    def test_points_within_extent(self):
        objects = self._generate()
        for obj in objects:
            assert -90 <= obj.point[0] <= 90
            assert -180 <= obj.point[1] <= 180

    def test_average_document_size_near_target(self):
        objects = self._generate(n_objects=1_000, avg_unique_words=20)
        mean_unique = sum(
            len(DEFAULT_ANALYZER.terms(o.text)) for o in objects
        ) / len(objects)
        assert mean_unique == pytest.approx(20, rel=0.25)

    def test_zipf_skew_concentrates_frequency(self):
        objects = self._generate(n_objects=800, zipf_exponent=1.2)
        from collections import Counter

        counts = Counter()
        for obj in objects:
            counts.update(obj.text.split())
        frequencies = [c for _, c in counts.most_common()]
        top_share = sum(frequencies[:10]) / sum(frequencies)
        assert top_share > 0.2  # heavily skewed

    def test_uniform_spatial_mode(self):
        objects = self._generate(clusters=0)
        assert len(objects) == 400

    def test_clustered_points_concentrate(self):
        clustered = self._generate(clusters=3, cluster_std=1.0)
        xs = sorted(o.point[0] for o in clustered)
        # With 3 tight clusters the middle half of x-values spans far
        # less than the full extent.
        iqr = xs[len(xs) * 3 // 4] - xs[len(xs) // 4]
        assert iqr < 120

    def test_frequency_helpers(self):
        generator = SpatialTextDatasetGenerator(
            DatasetConfig(name="t", n_objects=1, vocabulary_size=100, avg_unique_words=5)
        )
        assert len(generator.frequent_words(3)) == 3
        assert len(generator.rare_words(3)) == 3
        assert generator.frequent_words(1) != generator.rare_words(1)

    def test_invalid_configs(self):
        with pytest.raises(DatasetError):
            DatasetConfig(name="x", n_objects=0, vocabulary_size=10, avg_unique_words=2)
        with pytest.raises(DatasetError):
            DatasetConfig(name="x", n_objects=1, vocabulary_size=0, avg_unique_words=2)
        with pytest.raises(DatasetError):
            DatasetConfig(name="x", n_objects=1, vocabulary_size=10, avg_unique_words=0)


class TestPaperPresets:
    def test_hotels_full_scale_matches_table1(self):
        config = hotels_config(scale=1.0)
        assert config.n_objects == 129_319
        assert config.vocabulary_size == 53_906
        assert config.avg_unique_words == 349.0

    def test_restaurants_full_scale_matches_table1(self):
        config = restaurants_config(scale=1.0)
        assert config.n_objects == 456_288
        assert config.vocabulary_size == 73_855
        assert config.avg_unique_words == 14.0

    def test_scale_shrinks_objects_heaps_law_vocab(self):
        config = hotels_config(scale=0.01)
        assert config.n_objects == round(129_319 * 0.01)
        assert config.vocabulary_size == round(53_906 * 0.1)

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            hotels_config(scale=0.0)
        with pytest.raises(DatasetError):
            restaurants_config(scale=-1.0)


class TestTsvFiles:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "hotels.tsv")
        objects = figure1_hotels()
        assert save_tsv(path, objects) == 8
        loaded = load_tsv(path)
        assert [o.oid for o in loaded] == [o.oid for o in objects]
        assert loaded[0].point == objects[0].point
        assert "tennis" in loaded[0].text

    def test_iter_streams(self, tmp_path):
        path = str(tmp_path / "x.tsv")
        save_tsv(path, figure1_hotels())
        count = sum(1 for _ in iter_tsv(path))
        assert count == 8

    def test_missing_file(self):
        with pytest.raises(DatasetError):
            load_tsv("/nonexistent/file.tsv")

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\tnot-a-float\t2.0\ttext\n")
        with pytest.raises(DatasetError):
            load_tsv(str(path))

    def test_too_few_columns(self, tmp_path):
        path = tmp_path / "short.tsv"
        path.write_text("1\t2.0\n")
        with pytest.raises(DatasetError):
            load_tsv(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.tsv"
        path.write_text("1\t2.0\t3.0\ttext\n\n2\t4.0\t5.0\tmore\n")
        assert len(load_tsv(str(path))) == 2

    def test_text_with_tabs_preserved_as_text_columns(self, tmp_path):
        path = tmp_path / "tabs.tsv"
        path.write_text("1\t2.0\t3.0\ta\tb\tc\n")
        loaded = load_tsv(str(path))
        assert loaded[0].text == "a\tb\tc"
