"""Hypothesis stateful test: the engine vs. a naive in-memory model.

Drives a live :class:`~repro.core.engine.SpatialKeywordEngine` through
arbitrary interleavings of inserts, deletes, and distance-first queries,
checking every query against the brute-force oracle over a plain dict
model.  This is the strongest correctness net in the suite: any
maintenance bug (signature staleness, CondenseTree mistakes, stale
pointers) surfaces as a query disagreement.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import SpatialKeywordEngine, SpatialObject
from repro.core import SpatialKeywordQuery, brute_force_top_k

#: Tiny closed vocabulary so queries frequently hit real documents.
VOCABULARY = [f"kw{i}" for i in range(12)]

coords = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)
documents = st.lists(
    st.sampled_from(VOCABULARY), min_size=1, max_size=5
).map(lambda words: " ".join(words))


class EngineMachine(RuleBasedStateMachine):
    """Random insert/delete/query workload with an oracle check."""

    @initialize(kind=st.sampled_from(["rtree", "ir2", "mir2", "sig"]))
    def setup(self, kind):
        # Tiny capacity forces splits/condenses on small object counts.
        self.engine = SpatialKeywordEngine(
            index=kind, signature_bytes=4, capacity=4
        )
        self.engine.build()
        self.model: dict[int, SpatialObject] = {}
        self.next_oid = 0

    @rule(x=coords, y=coords, text=documents)
    def insert(self, x, y, text):
        obj = SpatialObject(self.next_oid, (x, y), text)
        self.next_oid += 1
        self.engine.add(obj)
        self.model[obj.oid] = obj

    @precondition(lambda self: self.model)
    @rule(choice=st.integers(0, 2**30))
    def delete(self, choice):
        oid = sorted(self.model)[choice % len(self.model)]
        assert self.engine.delete(oid) is True
        del self.model[oid]

    @rule(data=st.data())
    def query(self, data):
        keywords = data.draw(
            st.lists(st.sampled_from(VOCABULARY), min_size=1, max_size=2, unique=True)
        )
        point = (data.draw(coords), data.draw(coords))
        k = data.draw(st.integers(1, 5))
        query = SpatialKeywordQuery.of(point, keywords, k)
        got = self.engine.index.execute(query)
        full_query = SpatialKeywordQuery.of(point, keywords, len(self.model) + 1)
        full = brute_force_top_k(
            list(self.model.values()), self.engine.corpus.analyzer, full_query
        )
        want = full[:k]
        # Distances must agree exactly; oids may permute only among
        # exact ties, so each returned oid must be a model object with
        # the keywords at exactly that distance.
        got_distances = [round(r.distance, 9) for r in got.results]
        want_distances = [round(r.distance, 9) for r in want]
        assert got_distances == want_distances
        eligible_by_distance: dict[float, set[int]] = {}
        for result in full:  # untruncated: ties at the k-boundary count
            eligible_by_distance.setdefault(
                round(result.distance, 9), set()
            ).add(result.oid)
        for result in got.results:
            assert result.oid in eligible_by_distance[round(result.distance, 9)]

    @invariant()
    def size_matches_model(self):
        if hasattr(self, "engine"):
            assert len(self.engine) == len(self.model)


TestEngineStateful = EngineMachine.TestCase
TestEngineStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
