"""Workload capture, analysis, and deterministic replay tests.

Covers the :mod:`repro.obs.querylog` writer discipline (sampling,
rotation, bounded-queue drops, crash tolerance), the digest-exact
replay gate across engine configurations, the workload analysis report
and its schema validation, Prometheus metrics exposition, the
answer-at-version API, and the end-to-end observability reconciliation
under combined batched + snapshot-maintenance + sharded traffic.
"""

from __future__ import annotations

import json

import pytest

from repro.core.engine import SpatialKeywordEngine
from repro.core.query import SpatialKeywordQuery
from repro.core.ranking import DistanceDecayRanking
from repro.bench.workloads import ConcurrentLoadGenerator, WorkloadGenerator
from repro.errors import (
    DeviceFaultError,
    ReproError,
    ServiceError,
    VersionRetiredError,
)
from repro.obs import MetricsRegistry
from repro.obs.export import render_prometheus
from repro.obs.querylog import (
    QueryLogError,
    QueryLogWriter,
    build_record,
    iter_query_log,
    query_log_paths,
    read_query_log,
    result_digest,
)
from repro.obs.replay import ReplayError, replay_query_log
from repro.obs.trace import QueryTracer
from repro.obs.workload import (
    analyze_query_log,
    render_workload_report,
    validate_workload_report,
)
from repro.serve import BatchConfig, QueryService, TraceSpan
from repro.shard import ShardedEngine


@pytest.fixture
def engine(small_objects) -> SpatialKeywordEngine:
    eng = SpatialKeywordEngine(index="ir2", signature_bytes=8)
    eng.add_all(small_objects)
    eng.build()
    return eng


@pytest.fixture
def workload(small_objects, engine) -> ConcurrentLoadGenerator:
    return ConcurrentLoadGenerator(
        small_objects, engine.corpus.analyzer, seed=17
    )


def _span(query_id: int = 0) -> TraceSpan:
    span = TraceSpan(query_id=query_id, keywords=("café",), k=3)
    span.submitted_at = 1.0
    span.started_at = 1.001
    span.lock_acquired_at = 1.002
    span.search_done_at = 1.010
    span.finished_at = 1.011
    return span


def _mixed_queries(workload, count=60):
    return workload.mixed_batch(
        count,
        num_keywords=2,
        k=5,
        hot_fraction=0.2,
        area_fraction=0.2,
        ranked_fraction=0.2,
        ranking=DistanceDecayRanking(half_distance=5.0),
    )


class TestQueryLogWriter:
    def test_capture_and_read_back(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLogWriter(path) as log:
            for i in range(5):
                assert log.offer(_span(i)) is True
            log.drain()
        records = read_query_log(path)
        assert [r["query_id"] for r in records] == list(range(5))
        assert all(r["schema"] == 1 for r in records)
        assert all("latency_ms" in r for r in records)

    def test_sampling_counts(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLogWriter(path, sample_every=3) as log:
            for i in range(10):
                log.offer(_span(i))
            log.drain()
            assert log.seen == 10
            assert log.sampled == 4  # offers 0, 3, 6, 9
        assert [r["query_id"] for r in read_query_log(path)] == [0, 3, 6, 9]

    def test_size_based_rotation_preserves_order(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLogWriter(path, max_segment_bytes=600) as log:
            for i in range(40):
                log.offer(_span(i))
            log.drain()
            assert log.rotations > 0
        segments = query_log_paths(path)
        assert len(segments) > 1
        assert segments[-1] == path  # active segment reads last
        records = read_query_log(path)
        assert [r["query_id"] for r in records] == list(range(40))

    def test_full_queue_drops_and_counts(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        metrics = MetricsRegistry()
        # No drain thread: the bounded queue fills after one record.
        log = QueryLogWriter(path, max_queue=1, metrics=metrics, autostart=False)
        assert log.offer(_span(0)) is True
        assert log.offer(_span(1)) is False
        assert log.dropped == 1
        assert metrics.snapshot()["counters"]["querylog.dropped"] == 1

    def test_leftover_active_segment_rotates_not_overwrites(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLogWriter(path) as log:
            log.offer(_span(0))
            log.drain()
        with QueryLogWriter(path) as log:
            log.offer(_span(1))
            log.drain()
        records = read_query_log(path)
        assert [r["query_id"] for r in records] == [0, 1]

    def test_crash_truncated_final_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        with QueryLogWriter(path) as log:
            log.offer(_span(0))
            log.drain()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "query_id"')  # torn mid-append
        assert [r["query_id"] for r in read_query_log(path)] == [0]

    def test_malformed_interior_line_raises(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        record = json.dumps(build_record(_span(0)))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not json\n" + record + "\n")
        with pytest.raises(QueryLogError):
            read_query_log(path)

    def test_missing_log_raises(self, tmp_path):
        with pytest.raises(QueryLogError):
            list(iter_query_log(str(tmp_path / "absent.jsonl")))

    def test_invalid_configuration_rejected(self, tmp_path):
        with pytest.raises(QueryLogError):
            QueryLogWriter(str(tmp_path / "q"), sample_every=0)
        with pytest.raises(QueryLogError):
            QueryLogWriter(str(tmp_path / "q"), max_segment_bytes=0)


class TestCaptureThroughService:
    def test_every_query_appends_one_record(self, engine, workload, tmp_path):
        path = str(tmp_path / "q.jsonl")
        queries = _mixed_queries(workload, 40)
        with QueryService(engine, workers=2, query_log=path) as service:
            executions = service.run_batch(queries)
            stats = service.stats()
        records = read_query_log(path)
        assert len(records) == stats.queries == len(queries)
        by_id = {e.trace.query_id: e for e in executions}
        for record in records:
            execution = by_id[record["query_id"]]
            assert record["results"]["digest"] == result_digest(
                execution.results
            )
            assert record["results"]["oids"] == execution.oids
            assert record["io"]["random_reads"] == execution.io.random_reads
            assert record["io"]["shared_reads"] == execution.io.shared_reads
            assert record["engine_version"] == execution.engine_version
            assert record["query"]["k"] == execution.query.k

    def test_sampled_capture(self, engine, workload, tmp_path):
        path = str(tmp_path / "q.jsonl")
        queries = workload.queries(20, num_keywords=2, k=5)
        with QueryService(
            engine, workers=1, query_log=path, query_log_sample=4
        ) as service:
            service.run_batch(queries)
            assert service.query_log.seen == 20
            assert service.query_log.sampled == 5
        assert len(read_query_log(path)) == 5

    def test_shared_writer_is_not_closed_by_service(
        self, engine, workload, tmp_path
    ):
        path = str(tmp_path / "q.jsonl")
        writer = QueryLogWriter(path)
        queries = workload.queries(4, num_keywords=2, k=5)
        with QueryService(engine, workers=1, query_log=writer) as service:
            service.run_batch(queries)
        writer.drain()
        assert writer.offer(_span(99)) is True  # still open
        writer.close()
        assert len(read_query_log(path)) == 5

    def test_failed_query_records_error_and_shape(
        self, engine, workload, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "q.jsonl")
        query = workload.queries(1, num_keywords=2, k=5)[0]

        def explode(q):
            raise DeviceFaultError("disk on fire")

        with QueryService(
            engine, workers=1, retries=0, query_log=path,
            maintenance="rwlock",
        ) as service:
            monkeypatch.setattr(engine, "search", explode)
            with pytest.raises(DeviceFaultError):
                service.search(query)
        records = read_query_log(path)
        assert len(records) == 1
        assert "disk on fire" in records[0]["error"]
        assert records[0]["query"]["keywords"] == list(query.keywords)
        assert "results" not in records[0]

    def test_batched_capture_runs_after_trace_linkage(
        self, engine, workload, tmp_path
    ):
        path = str(tmp_path / "q.jsonl")
        queries = workload.queries(12, num_keywords=2, k=5)
        tracer = QueryTracer(sample_every=1)
        with QueryService(
            engine, workers=2, tracer=tracer,
            batching=BatchConfig(window_ms=1.0, max_batch=4),
            query_log=path,
        ) as service:
            service.run_batch(queries)
        records = read_query_log(path)
        assert len(records) == len(queries)
        assert all(r["batch_id"] is not None for r in records)
        assert all(r["trace_id"] is not None for r in records)


class TestDeterministicReplay:
    def test_replay_reproduces_every_digest(
        self, small_objects, engine, workload, tmp_path
    ):
        path = str(tmp_path / "q.jsonl")
        queries = _mixed_queries(workload, 60)
        with QueryService(engine, workers=1, query_log=path) as service:
            for query in queries:
                service.search(query)
        records = read_query_log(path)

        fresh = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        fresh.add_all(small_objects)
        fresh.build()
        report = replay_query_log(records, fresh)
        assert report["mismatch_count"] == 0
        assert report["replayed"] == len(queries)
        assert report["ok"] is True

    def test_replay_matches_across_shard_configs(
        self, small_objects, engine, workload, tmp_path
    ):
        """Digests captured unsharded reproduce on 2- and 3-shard layouts."""
        path = str(tmp_path / "q.jsonl")
        queries = _mixed_queries(workload, 50)
        with QueryService(engine, workers=1, query_log=path) as service:
            for query in queries:
                service.search(query)
        records = read_query_log(path)
        for n_shards, partitioner in ((2, "kd"), (3, "keyword")):
            sharded = ShardedEngine(
                n_shards=n_shards, partitioner=partitioner,
                index="ir2", signature_bytes=8,
            )
            sharded.add_all(small_objects)
            sharded.build()
            report = replay_query_log(records, sharded, io_threshold=None)
            assert report["mismatch_count"] == 0, (n_shards, partitioner)
            assert report["ok"] is True

    def test_batched_replay_matches_serial_capture(
        self, small_objects, engine, workload, tmp_path
    ):
        path = str(tmp_path / "q.jsonl")
        queries = _mixed_queries(workload, 30)
        with QueryService(engine, workers=1, query_log=path) as service:
            for query in queries:
                service.search(query)
        records = read_query_log(path)
        fresh = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        fresh.add_all(small_objects)
        fresh.build()
        report = replay_query_log(records, fresh, batched=True, max_batch=8)
        assert report["mismatch_count"] == 0
        assert report["batched"] is True

    def test_corpus_drift_is_detected(self, small_objects, workload, tmp_path):
        """Replaying against a different corpus fails the gate."""
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        engine.add_all(small_objects)
        engine.build()
        path = str(tmp_path / "q.jsonl")
        queries = workload.queries(20, num_keywords=1, k=5)
        with QueryService(engine, workers=1, query_log=path) as service:
            for query in queries:
                service.search(query)
        records = read_query_log(path)
        drifted = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        drifted.add_all(small_objects[: len(small_objects) // 2])
        drifted.build()
        report = replay_query_log(records, drifted, io_threshold=None)
        assert report["mismatch_count"] > 0
        assert report["ok"] is False
        assert report["mismatches"]  # carries concrete examples

    def test_error_and_custom_ranking_records_are_skipped(self, engine):
        span = _span(0)
        span.error = "ValueError: boom"
        error_record = build_record(span)
        custom = SpatialKeywordQuery.of(
            (0.0, 0.0), ["café"], 2, ranking=lambda d, ir: d
        )
        execution = engine.search(
            SpatialKeywordQuery.of((0.0, 0.0), ["café"], 2)
        )
        good_record = build_record(_span(1), execution)
        custom_record = build_record(_span(2), execution, query=custom)
        custom_record["query"]["ranking"] = {"kind": "custom"}
        report = replay_query_log(
            [error_record, good_record, custom_record], engine,
            io_threshold=None,
        )
        assert report["skipped"]["errors"] == 1
        assert report["skipped"]["unreplayable"] == 1
        assert report["replayed"] == 1

    def test_empty_log_raises(self, engine):
        with pytest.raises(ReplayError):
            replay_query_log([], engine)


class TestWorkloadReport:
    def test_analysis_reconciles_with_the_log(
        self, engine, workload, tmp_path
    ):
        path = str(tmp_path / "q.jsonl")
        queries = _mixed_queries(workload, 60)
        with QueryService(engine, workers=1, query_log=path) as service:
            for query in queries:
                service.search(query)
        records = read_query_log(path)
        report = analyze_query_log(records)
        validate_workload_report(report)
        shapes = report["shapes"]
        assert report["records"] == len(records)
        assert (
            shapes["point"] + shapes["area"] + shapes["ranked"]
            == report["queries"]
        )
        assert shapes["area"] > 0 and shapes["ranked"] > 0
        assert report["io"]["total_reads"] == sum(
            r["io"]["random_reads"] + r["io"]["sequential_reads"]
            for r in records
        )
        assert report["terms"]["frequency"]  # non-empty term table
        assert report["hotspots"]["grid"]["total"] > 0
        rendered = render_workload_report(report)
        assert "shapes:" in rendered and "selectivity bands:" in rendered

    def test_validation_rejects_corrupted_reports(
        self, engine, workload, tmp_path
    ):
        path = str(tmp_path / "q.jsonl")
        with QueryService(engine, workers=1, query_log=path) as service:
            for query in workload.queries(5, num_keywords=1, k=3):
                service.search(query)
        report = analyze_query_log(read_query_log(path))
        report["shapes"]["point"] += 1  # break the shape identity
        with pytest.raises(ReproError):
            validate_workload_report(report)
        del report["shapes"]
        with pytest.raises(ReproError):
            validate_workload_report(report)


class TestPrometheusExposition:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("service.queries").inc(7)
        registry.gauge("service.queue_depth").set(3)
        hist = registry.histogram("service.total_ms", buckets=[1.0, 10.0])
        for value in (0.5, 0.7, 5.0, 50.0):
            hist.observe(value)
        text = render_prometheus(registry.snapshot())
        lines = text.splitlines()
        assert "# TYPE repro_service_queries counter" in lines
        assert "repro_service_queries 7" in lines
        assert "repro_service_queue_depth 3" in lines
        # Buckets are cumulative and close with +Inf.
        assert 'repro_service_total_ms_bucket{le="1"} 2' in lines
        assert 'repro_service_total_ms_bucket{le="10"} 3' in lines
        assert 'repro_service_total_ms_bucket{le="+Inf"} 4' in lines
        assert "repro_service_total_ms_count 4" in lines
        assert any(
            line.startswith("repro_service_total_ms_sum ") for line in lines
        )
        assert text.endswith("\n")

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_service_export(self, engine, workload, tmp_path):
        queries = workload.queries(8, num_keywords=2, k=5)
        out = tmp_path / "metrics.prom"
        with QueryService(engine, workers=1) as service:
            service.run_batch(queries)
            text = service.export_metrics(str(out), fmt="prometheus")
        assert "repro_service_queries 8" in text
        assert out.read_text() == text
        with QueryService(engine, workers=1) as service:
            with pytest.raises(ServiceError):
                service.export_metrics(fmt="yaml")

    def test_json_export_still_returns_payload(self, engine, workload):
        queries = workload.queries(4, num_keywords=2, k=5)
        with QueryService(engine, workers=1) as service:
            service.run_batch(queries)
            payload = json.loads(service.export_metrics())
        assert payload["service"]["queries"] == 4
        assert "metrics" in payload and "slow_queries" in payload


class TestAnswerAtVersion:
    def test_old_version_still_sees_deleted_object(self, engine, workload):
        query = workload.queries(1, num_keywords=1, k=3)[0]
        with QueryService(engine, workers=1) as service:
            before = service.search(query)
            assert before.results, "need a non-empty answer to pin"
            v0 = service.engine_version
            victim = before.results[0].obj.oid
            assert service.delete(victim) is True
            service.flush()
            current = service.search(query)
            assert victim not in current.oids
            pinned = service.search(query, at_version=v0)
            assert pinned.engine_version == v0
            assert pinned.oids == before.oids

    def test_retired_version_raises_typed_error(self, small_objects):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=8)
        engine.add_all(small_objects)
        engine.build()
        query = SpatialKeywordQuery.of((0.0, 0.0), ["café"], 2)
        with QueryService(engine, workers=1) as service:
            window = service.maintainer.version_window
            donor = small_objects[0]
            for i in range(window + 2):
                service.add_object(10_000 + i, donor.point, donor.text)
            retained = service.maintainer.retained_versions()
            assert len(retained) <= window
            with pytest.raises(VersionRetiredError) as excinfo:
                service.search(query, at_version=0)
            assert excinfo.value.requested == 0
            assert excinfo.value.oldest == retained[0]
            # Every retained version still answers.
            execution = service.search(query, at_version=retained[0])
            assert execution.engine_version == retained[0]

    def test_rwlock_mode_has_no_versions(self, engine, workload):
        query = workload.queries(1, num_keywords=1, k=3)[0]
        with QueryService(engine, workers=1, maintenance="rwlock") as service:
            with pytest.raises(ServiceError):
                service.search(query, at_version=0)


class TestPrunedByKeywordsPropagation:
    @pytest.fixture
    def keyword_sharded(self, small_objects) -> ShardedEngine:
        sharded = ShardedEngine(
            n_shards=3, partitioner="keyword", index="ir2", signature_bytes=8
        )
        sharded.add_all(small_objects)
        sharded.build()
        return sharded

    def test_span_slowlog_and_record_agree(
        self, keyword_sharded, small_objects, tmp_path
    ):
        path = str(tmp_path / "q.jsonl")
        workload = WorkloadGenerator(
            small_objects, keyword_sharded.analyzer, seed=23
        )
        queries = workload.queries(30, num_keywords=1, k=5)
        with QueryService(
            keyword_sharded, workers=1, slow_query_ms=0.0,
            slow_log_capacity=64, query_log=path,
        ) as service:
            executions = service.run_batch(queries)
            slow_rows = {
                row["query_id"]: row for row in service.slow_log.as_dicts()
            }
        records = {r["query_id"]: r for r in read_query_log(path)}
        pruned_total = 0
        for execution in executions:
            span = execution.trace
            expected = sum(
                1 for s in execution.shards or []
                if s.get("pruned_by_keywords")
            )
            assert span.pruned_by_keywords == expected
            assert (
                slow_rows[span.query_id]["pruned_by_keywords"] == expected
            )
            record = records[span.query_id]
            assert record["fanout"]["pruned_by_keywords"] == expected
            assert record["batch_id"] == slow_rows[span.query_id]["batch_id"]
            pruned_total += expected
        assert pruned_total > 0, "workload never exercised keyword pruning"


class TestObservabilityReconciliation:
    def test_batched_snapshot_sharded_traffic_reconciles(
        self, small_objects, tmp_path
    ):
        """Records, spans, metrics, and IOStats agree element-wise."""
        sharded = ShardedEngine(
            n_shards=2, partitioner="kd", index="ir2", signature_bytes=8
        )
        sharded.add_all(small_objects)
        sharded.build()
        workload = WorkloadGenerator(
            small_objects, sharded.analyzer, seed=31
        )
        queries = workload.queries(36, num_keywords=2, k=5)
        path = str(tmp_path / "q.jsonl")
        tracer = QueryTracer(sample_every=1)
        donor = small_objects[0]
        with QueryService(
            sharded, workers=2, tracer=tracer,
            batching=BatchConfig(window_ms=1.0, max_batch=6),
            maintenance="snapshot", query_log=path,
        ) as service:
            executions = []
            for start in range(0, len(queries), 12):
                executions.extend(
                    service.run_batch(queries[start:start + 12])
                )
                # Interleave maintenance so versions advance mid-stream.
                service.add_object(20_000 + start, donor.point, donor.text)
                service.delete(20_000 + start)
            service.query_log.drain()  # let the writer thread catch up
            stats = service.stats()
            span_count = len(service.trace_log)
        records = read_query_log(path)

        assert len(records) == stats.queries == len(executions) == span_count
        by_id = {e.trace.query_id: e for e in executions}
        total = {"random_reads": 0, "sequential_reads": 0,
                 "shared_reads": 0, "objects_loaded": 0}
        for record in records:
            execution = by_id[record["query_id"]]
            io = record["io"]
            assert io["random_reads"] == execution.io.random_reads
            assert io["sequential_reads"] == execution.io.sequential_reads
            assert io["shared_reads"] == execution.io.shared_reads
            assert io["objects_loaded"] == execution.io.objects_loaded
            assert record["batch_id"] == execution.trace.batch_id
            assert record["engine_version"] == execution.engine_version
            for key in total:
                total[key] += io[key]
        assert total["random_reads"] == stats.io.random_reads
        assert total["sequential_reads"] == stats.io.sequential_reads
        assert total["shared_reads"] == stats.io.shared_reads
        assert total["objects_loaded"] == stats.io.objects_loaded
        counters = stats.metrics["counters"]
        assert counters["service.queries"] == stats.queries
        assert counters["querylog.records"] == len(records)
        assert (
            stats.metrics["histograms"]["service.total_ms"]["count"]
            == stats.queries
        )
