"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core import Corpus
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator, figure1_hotels
from repro.model import SpatialObject
from repro.storage import InMemoryBlockDevice, PageStore


@pytest.fixture
def hotels_objects() -> list[SpatialObject]:
    """The paper's Figure-1 running example dataset."""
    return figure1_hotels()


@pytest.fixture
def hotels_corpus(hotels_objects) -> Corpus:
    """A corpus loaded with the Figure-1 hotels."""
    corpus = Corpus()
    corpus.add_all(hotels_objects)
    return corpus


@pytest.fixture
def small_objects() -> list[SpatialObject]:
    """A 300-object synthetic dataset for algorithm cross-checks."""
    config = DatasetConfig(
        name="small",
        n_objects=300,
        vocabulary_size=400,
        avg_unique_words=10,
        clusters=6,
        seed=99,
    )
    return SpatialTextDatasetGenerator(config).generate()


@pytest.fixture
def small_corpus(small_objects) -> Corpus:
    """A corpus loaded with the 300-object synthetic dataset."""
    corpus = Corpus()
    corpus.add_all(small_objects)
    return corpus


@pytest.fixture
def device() -> InMemoryBlockDevice:
    """A fresh in-memory block device with default 4 KB blocks."""
    return InMemoryBlockDevice()


@pytest.fixture
def pages(device) -> PageStore:
    """A page store over a fresh in-memory device."""
    return PageStore(device)
