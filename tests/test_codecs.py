"""Tests for posting-list codecs (raw and delta+varint [NMN+00])."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.storage import InMemoryBlockDevice
from repro.text import InvertedIndex, RawCodec, VarintCodec, get_codec
from repro.text.analyzer import DEFAULT_ANALYZER

CODECS = [RawCodec(), VarintCodec()]

sorted_postings = st.lists(
    st.integers(0, 2**31 - 1), max_size=200, unique=True
).map(sorted)


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
class TestRoundTrip:
    def test_empty(self, codec):
        assert codec.decode(codec.encode([]), 0) == []

    def test_single(self, codec):
        assert codec.decode(codec.encode([42]), 1) == [42]

    def test_large_values(self, codec):
        postings = [0, 1, 127, 128, 16_383, 16_384, 2**31 - 1]
        assert codec.decode(codec.encode(postings), len(postings)) == postings

    def test_truncated_data_raises(self, codec):
        data = codec.encode([1, 1000, 100_000])
        with pytest.raises(SerializationError):
            codec.decode(data[:1], 3)


@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
@given(postings=sorted_postings)
@settings(max_examples=100, deadline=None)
def test_property_roundtrip(codec, postings):
    assert codec.decode(codec.encode(postings), len(postings)) == postings


class TestVarintSpecifics:
    def test_dense_lists_compress(self):
        codec = VarintCodec()
        dense = list(range(0, 4000, 4))  # gaps of 4 -> 1 byte each
        raw_size = len(RawCodec().encode(dense))
        varint_size = len(codec.encode(dense))
        assert varint_size < raw_size / 3

    def test_sparse_lists_do_not_explode(self):
        codec = VarintCodec()
        sparse = [i * 10_000_019 for i in range(100)]
        assert len(codec.encode(sparse)) <= len(RawCodec().encode(sparse))

    def test_unsorted_input_rejected(self):
        with pytest.raises(SerializationError):
            VarintCodec().encode([5, 3])

    def test_first_value_absolute(self):
        codec = VarintCodec()
        assert codec.decode(codec.encode([300]), 1) == [300]


class TestFactory:
    def test_known_names(self):
        assert get_codec("raw").name == "raw"
        assert get_codec("varint").name == "varint"

    def test_unknown_name(self):
        with pytest.raises(SerializationError):
            get_codec("zstd")


class TestCompressedIndex:
    def _build(self, compression):
        index = InvertedIndex(
            InMemoryBlockDevice(block_size=64), DEFAULT_ANALYZER,
            compression=compression,
        )
        index.build([(i * 2, "pool spa" if i % 3 else "pool gym") for i in range(150)])
        return index

    def test_compressed_equals_raw(self):
        raw = self._build("raw")
        varint = self._build("varint")
        for term in ("pool", "spa", "gym"):
            assert raw.postings(term) == varint.postings(term)
        assert raw.retrieve_conjunction(["pool", "spa"]) == (
            varint.retrieve_conjunction(["pool", "spa"])
        )

    def test_compressed_is_smaller(self):
        raw = self._build("raw")
        varint = self._build("varint")
        assert varint.postings_bytes < raw.postings_bytes

    def test_compressed_reads_fewer_blocks(self):
        raw = self._build("raw")
        varint = self._build("varint")
        raw.device.stats.reset()
        varint.device.stats.reset()
        raw.postings("pool")
        varint.postings("pool")
        assert varint.device.stats.total_reads <= raw.device.stats.total_reads

    def test_maintenance_under_compression(self):
        index = self._build("varint")
        index.add(9_999, "pool brand new")
        assert 9_999 in index.postings("pool")
        index.remove(9_999, "pool brand new")
        assert 9_999 not in index.postings("pool")
        index.compact()
        assert index.dead_bytes == 0
