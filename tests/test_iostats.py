"""Unit tests for random/sequential disk-access accounting."""

from __future__ import annotations

from repro.storage.iostats import AccessCounts, IOStats


class TestClassification:
    def test_first_access_is_random(self):
        stats = IOStats()
        assert stats.record_read(5) is False
        assert stats.random_reads == 1
        assert stats.sequential_reads == 0

    def test_next_block_is_sequential(self):
        stats = IOStats()
        stats.record_read(5)
        assert stats.record_read(6) is True
        assert stats.sequential_reads == 1

    def test_same_block_again_is_random(self):
        """Re-reading the same block is not head-contiguous."""
        stats = IOStats()
        stats.record_read(5)
        assert stats.record_read(5) is False
        assert stats.random_reads == 2

    def test_backward_jump_is_random(self):
        stats = IOStats()
        stats.record_read(5)
        assert stats.record_read(4) is False

    def test_write_advances_head_for_reads(self):
        stats = IOStats()
        stats.record_write(9)
        assert stats.record_read(10) is True

    def test_extent_pattern(self):
        """A 4-block extent = 1 random + 3 sequential."""
        stats = IOStats()
        for block in range(10, 14):
            stats.record_read(block)
        assert stats.random_reads == 1
        assert stats.sequential_reads == 3


class TestCategories:
    def test_category_reads_split(self):
        stats = IOStats()
        stats.record_read(1, "node")
        stats.record_read(2, "node")
        stats.record_read(9, "object")
        assert stats.category_reads("node") == 2
        assert stats.category_reads("object") == 1
        assert stats.category_reads("missing") == 0

    def test_category_random_reads(self):
        stats = IOStats()
        stats.record_read(1, "node")  # random
        stats.record_read(2, "node")  # sequential
        assert stats.category_random_reads("node") == 1

    def test_object_loads(self):
        stats = IOStats()
        stats.record_object_load()
        stats.record_object_load(3)
        assert stats.objects_loaded == 4


class TestAggregates:
    def test_totals(self):
        stats = IOStats()
        stats.record_read(0)
        stats.record_read(1)
        stats.record_write(7)
        assert stats.total_reads == 2
        assert stats.total_writes == 1
        assert stats.total_accesses == 3

    def test_access_counts_total(self):
        counts = AccessCounts(reads=3, writes=2)
        assert counts.total == 5

    def test_summary_mentions_counts(self):
        stats = IOStats()
        stats.record_read(0)
        assert "random: 1r/0w" in stats.summary()


class TestSnapshotDiffMerge:
    def test_snapshot_is_independent(self):
        stats = IOStats()
        stats.record_read(0)
        snap = stats.snapshot()
        stats.record_read(5)
        assert snap.random_reads == 1
        assert stats.random_reads == 2

    def test_diff(self):
        stats = IOStats()
        stats.record_read(0, "node")
        snap = stats.snapshot()
        stats.record_read(1, "node")
        stats.record_read(9, "object")
        stats.record_object_load()
        delta = stats.diff(snap)
        assert delta.sequential_reads == 1
        assert delta.random_reads == 1
        assert delta.category_reads("node") == 1
        assert delta.category_reads("object") == 1
        assert delta.objects_loaded == 1

    def test_diff_with_category_only_in_earlier(self):
        stats = IOStats()
        stats.record_read(0, "tmp")
        snap = stats.snapshot()
        fresh = IOStats()
        delta = fresh.diff(snap)
        assert delta.category_reads("tmp") == -1

    def test_merged_with(self):
        a = IOStats()
        a.record_read(0, "node")
        b = IOStats()
        b.record_read(0, "object")
        b.record_read(1, "object")
        merged = a.merged_with(b)
        assert merged.total_reads == 3
        assert merged.category_reads("node") == 1
        assert merged.category_reads("object") == 2

    def test_reset(self):
        stats = IOStats()
        stats.record_read(3)
        stats.record_object_load()
        stats.reset()
        assert stats.total_accesses == 0
        assert stats.objects_loaded == 0
        # Head position forgotten: next access is random even at block 4.
        assert stats.record_read(4) is False


class TestConcurrency:
    """Regression: counter increments are read-modify-write sequences and
    used to race; the per-stats lock must lose no counts under contention."""

    def test_no_lost_counts_under_contention(self):
        import threading

        stats = IOStats()
        n_threads, ops_each = 8, 2000

        def hammer(seed: int):
            for i in range(ops_each):
                stats.record_read(seed * ops_each + i, "node")
                if i % 4 == 0:
                    stats.record_write(seed, "node")
                if i % 8 == 0:
                    stats.record_object_load()

        threads = [
            threading.Thread(target=hammer, args=(s,)) for s in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.total_reads == n_threads * ops_each
        assert stats.total_writes == n_threads * (ops_each // 4)
        assert stats.objects_loaded == n_threads * (ops_each // 8)
        # Per-category tallies balance the aggregate counters exactly.
        assert stats.category_reads("node") == stats.total_reads

    def test_concurrent_snapshots_are_internally_consistent(self):
        import threading

        stats = IOStats()
        stop = threading.Event()
        failures = []

        def writer():
            block = 0
            while not stop.is_set():
                stats.record_read(block, "node")
                block += 1

        def snapshotter():
            for _ in range(300):
                snap = stats.snapshot()
                if snap.category_reads("node") != snap.total_reads:
                    failures.append("snapshot tore between counters")
                    return

        w = threading.Thread(target=writer)
        s = threading.Thread(target=snapshotter)
        w.start()
        s.start()
        s.join()
        stop.set()
        w.join()
        assert not failures


class TestCollectingIO:
    """Thread-local per-execution collectors (the serving layer's isolation)."""

    def test_collector_sees_this_threads_events(self):
        from repro.storage.iostats import collecting_io

        device_stats = IOStats()
        device_stats.record_read(0)  # before the window: not collected
        with collecting_io() as io:
            device_stats.record_read(10, "node")
            device_stats.record_read(11, "node")
            device_stats.record_object_load(2)
        device_stats.record_read(99)  # after the window: not collected
        assert io.total_reads == 2
        assert io.random_reads == 1 and io.sequential_reads == 1
        assert io.category_reads("node") == 2
        assert io.objects_loaded == 2
        assert device_stats.total_reads == 4

    def test_collectors_nest(self):
        from repro.storage.iostats import collecting_io

        stats = IOStats()
        with collecting_io() as outer:
            stats.record_read(0)
            with collecting_io() as inner:
                stats.record_read(5)
            stats.record_read(9)
        assert inner.total_reads == 1
        assert outer.total_reads == 3

    def test_collectors_nest_with_equal_counters(self):
        # Regression: with no I/O between the two entries, inner and outer
        # hold equal counter values at the inner exit; teardown must remove
        # the *inner* collector (by identity), not whichever compares equal.
        from repro.storage.iostats import collecting_io

        stats = IOStats()
        with collecting_io() as outer:
            with collecting_io() as inner:
                stats.record_read(0)
            # The outer collector must still be installed here.
            stats.record_read(10)
        assert inner.total_reads == 1
        assert outer.total_reads == 2

    def test_sequential_exported_collectors_stay_isolated(self):
        # Regression: two back-to-back collecting_io() windows must each see
        # only their own window's I/O, even though the first collector's
        # counters may equal the second's at teardown time.
        from repro.storage.iostats import collecting_io

        stats = IOStats()
        with collecting_io() as first:
            stats.record_read(0)
            stats.record_read(1)
        with collecting_io() as second:
            stats.record_read(100)
        assert first.total_reads == 2
        assert second.total_reads == 1

    def test_collector_spans_multiple_devices(self):
        from repro.storage.iostats import collecting_io

        a, b = IOStats(), IOStats()
        with collecting_io() as io:
            a.record_read(0)
            b.record_read(0)
            b.record_write(1)
        assert io.total_reads == 2
        assert io.total_writes == 1

    def test_collector_is_invisible_to_other_threads(self):
        import threading
        from repro.storage.iostats import collecting_io

        shared = IOStats()
        ready = threading.Barrier(2)
        collected: dict[str, int] = {}

        def worker(name: str, base_block: int):
            with collecting_io() as io:
                ready.wait()
                for i in range(500):
                    shared.record_read(base_block + i)
            collected[name] = io.total_reads

        threads = [
            threading.Thread(target=worker, args=("a", 0)),
            threading.Thread(target=worker, args=("b", 100_000)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Each thread's collector saw exactly its own 500 reads, while the
        # shared device counted all 1000.
        assert collected == {"a": 500, "b": 500}
        assert shared.total_reads == 1000
