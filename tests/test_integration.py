"""End-to-end integration tests across the whole stack.

These tests tie every layer together: real file-backed devices, mixed
build paths, live maintenance under queries, and four-way algorithm
agreement on a non-trivial corpus.
"""

from __future__ import annotations

import random

import pytest

from repro import SpatialKeywordEngine
from repro.core import (
    Corpus,
    IIOIndex,
    IR2Index,
    MIR2Index,
    RTreeIndex,
    SpatialKeywordQuery,
    brute_force_top_k,
)
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.model import SpatialObject
from repro.storage import FileBlockDevice


def medium_objects(n=600, seed=21):
    config = DatasetConfig(
        name="integration",
        n_objects=n,
        vocabulary_size=900,
        avg_unique_words=11,
        clusters=8,
        seed=seed,
    )
    return SpatialTextDatasetGenerator(config).generate()


def queries_for(corpus, objects, count, seed=0, num_keywords=2, k=7):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        obj = rng.choice(objects)
        terms = sorted(corpus.analyzer.terms(obj.text))
        out.append(
            SpatialKeywordQuery.of(
                (rng.uniform(-90, 90), rng.uniform(-180, 180)),
                rng.sample(terms, min(num_keywords, len(terms))),
                k,
            )
        )
    return out


class TestFourWayAgreement:
    def test_medium_corpus_all_algorithms_all_queries(self):
        objects = medium_objects()
        corpus = Corpus()
        corpus.add_all(objects)
        indexes = [
            RTreeIndex(corpus),
            IIOIndex(corpus),
            IR2Index(corpus, 8),
            MIR2Index(corpus, 8),
        ]
        for index in indexes:
            index.build()
        for query in queries_for(corpus, objects, 15):
            expected = [
                r.oid for r in brute_force_top_k(objects, corpus.analyzer, query)
            ]
            for index in indexes:
                assert index.execute(query).oids == expected, index.label


class TestFileBackedStack:
    def test_everything_on_real_files(self, tmp_path):
        """The whole system running over genuine on-disk block files."""
        objects = medium_objects(150, seed=22)
        object_device = FileBlockDevice(str(tmp_path / "objects.dat"))
        corpus = Corpus(device=object_device)
        corpus.add_all(objects)
        index_device = FileBlockDevice(str(tmp_path / "ir2.dat"))
        index = IR2Index(corpus, 8, device=index_device)
        index.build()
        for query in queries_for(corpus, objects, 5, seed=1):
            expected = [
                r.oid for r in brute_force_top_k(objects, corpus.analyzer, query)
            ]
            assert index.execute(query).oids == expected
        assert (tmp_path / "ir2.dat").stat().st_size > 0
        object_device.close()
        index_device.close()


class TestLiveMaintenanceUnderQueries:
    @pytest.mark.parametrize("kind", ["ir2", "mir2"])
    def test_interleaved_updates_and_queries(self, kind):
        engine = SpatialKeywordEngine(index=kind, signature_bytes=8)
        objects = medium_objects(120, seed=23)
        engine.add_all(objects[:100])
        engine.build()
        rng = random.Random(24)
        live = {obj.oid: obj for obj in objects[:100]}
        pending = list(objects[100:])
        for step in range(40):
            action = rng.random()
            if action < 0.3 and pending:
                obj = pending.pop()
                engine.add(obj)
                live[obj.oid] = obj
            elif action < 0.5 and len(live) > 50:
                oid = rng.choice(list(live))
                assert engine.delete(oid) is True
                del live[oid]
            else:
                anchor = rng.choice(list(live.values()))
                terms = sorted(engine.corpus.analyzer.terms(anchor.text))
                keywords = rng.sample(terms, min(2, len(terms)))
                query = SpatialKeywordQuery.of(
                    (rng.uniform(-90, 90), rng.uniform(-180, 180)), keywords, 5
                )
                expected = [
                    r.oid
                    for r in brute_force_top_k(
                        live.values(), engine.corpus.analyzer, query
                    )
                ]
                got = engine.index.execute(query).oids
                assert got == expected


class TestScaleSanity:
    def test_ir2_io_grows_sublinearly(self):
        """Doubling the dataset should not double per-query node reads
        (logarithmic tree depth + localized pruning)."""
        reads = {}
        for n in (400, 1_600):
            objects = medium_objects(n, seed=25)
            corpus = Corpus()
            corpus.add_all(objects)
            index = IR2Index(corpus, 8)
            index.build()
            total = 0
            for query in queries_for(corpus, objects, 8, seed=2, k=3):
                total += index.execute(query).io.category_reads("node")
            reads[n] = total
        assert reads[1_600] < 4 * reads[400]

    def test_engine_survives_singleton_corpus(self):
        engine = SpatialKeywordEngine(index="ir2", signature_bytes=4)
        engine.add(SpatialObject(1, (0.0, 0.0), "lonely pool"))
        engine.build()
        assert engine.query((0.0, 0.0), ["pool"], 3).oids == [1]
